"""Vectorized fast path vs the interpreter vs the untiled oracle.

The contract of :mod:`repro.runtime.fastpath` is *bit-identity*: for
every bundled problem, vector mode must reproduce the interpreter's
objective value, full ``record_values`` table, memory-tracker snapshot
and tile order exactly — no tolerances — and both must match
``solve_reference``.  A hypothesis sweep varies instance sizes and tile
widths to hit ragged boundary tiles, empty tiles and degenerate
instances.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RuntimeExecutionError
from repro.generator import generate
from repro.problems import (
    damerau_spec,
    delayed_two_arm_spec,
    edit_distance_spec,
    lcs_spec,
    msa_spec,
    random_sequence,
    smith_waterman_spec,
    three_arm_spec,
    two_arm_spec,
)
from repro.runtime import (
    compiled_executor,
    execute,
    solve_reference,
    vector_unsupported_reason,
)


def assert_bit_identical(program, params):
    """Vector == interpreter == untiled reference, exactly."""
    interp = execute(program, params, record_values=True, mode="interpret")
    vector = execute(program, params, record_values=True, mode="vector")
    oracle = solve_reference(program, params, record_values=True)
    assert vector.mode == "vector"
    assert interp.mode == "interpret"
    assert vector.objective_value == interp.objective_value
    assert vector.objective_value == oracle.objective_value
    assert vector.values == interp.values  # every cell, bit-for-bit
    assert vector.values == oracle.values
    assert vector.memory == interp.memory  # same edges, same peaks
    assert vector.tile_order == interp.tile_order
    assert vector.cells_computed == interp.cells_computed
    return vector


class TestAllBundledProblems:
    def test_bandit2(self, bandit2_program):
        for n in (0, 1, 2, 5, 9):
            assert_bit_identical(bandit2_program, {"N": n})

    def test_bandit3(self, bandit3_program):
        assert_bit_identical(bandit3_program, {"N": 5})

    def test_delayed_bandit(self, delayed_program):
        assert_bit_identical(delayed_program, {"N": 6})

    def test_edit_distance(self, edit_program, edit_strings):
        a, b = edit_strings
        assert_bit_identical(edit_program, {"LA": len(a), "LB": len(b)})

    def test_edit_distance_prefix_run(self, edit_program):
        # Objective cell outside the space: both engines report None.
        interp = execute(edit_program, {"LA": 3, "LB": 2}, mode="interpret")
        vector = execute(edit_program, {"LA": 3, "LB": 2}, mode="vector")
        assert interp.objective_value is None
        assert vector.objective_value is None

    def test_lcs2(self):
        a, b = random_sequence(15, seed=5), random_sequence(12, seed=6)
        program = generate(lcs_spec([a, b], tile_width=4))
        assert_bit_identical(program, {"L1": len(a), "L2": len(b)})

    def test_lcs3(self, lcs3_program, lcs3_strings):
        params = {f"L{k+1}": len(s) for k, s in enumerate(lcs3_strings)}
        assert_bit_identical(lcs3_program, params)

    def test_msa2(self):
        a, b = random_sequence(13, seed=7), random_sequence(16, seed=8)
        program = generate(msa_spec([a, b], tile_width=4))
        assert_bit_identical(program, {"L1": len(a), "L2": len(b)})

    def test_msa3(self, msa3_program, lcs3_strings):
        params = {f"L{k+1}": len(s) for k, s in enumerate(lcs3_strings)}
        assert_bit_identical(msa3_program, params)

    def test_damerau(self):
        a, b = "ca", "abc"
        program = generate(damerau_spec(a, b, tile_width=2))
        assert_bit_identical(program, {"LA": len(a), "LB": len(b)})
        a, b = random_sequence(14, seed=9), random_sequence(10, seed=10)
        program = generate(damerau_spec(a, b, tile_width=4))
        assert_bit_identical(program, {"LA": len(a), "LB": len(b)})

    def test_smith_waterman(self):
        a, b = random_sequence(14, seed=12), random_sequence(17, seed=13)
        program = generate(smith_waterman_spec(a, b, tile_width=4))
        res = assert_bit_identical(program, {"LA": len(a), "LB": len(b)})
        assert res.values  # local alignment consumers read the full table

    def test_empty_sequences(self):
        program = generate(edit_distance_spec("", "", tile_width=2))
        assert_bit_identical(program, {"LA": 0, "LB": 0})


class TestHypothesisSweep:
    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(0, 10), w=st.integers(2, 6))
    def test_bandit2_sweep(self, n, w):
        program = generate(two_arm_spec(tile_width=w))
        assert_bit_identical(program, {"N": n})

    @settings(max_examples=20, deadline=None)
    @given(
        la=st.integers(0, 9),
        lb=st.integers(0, 9),
        w=st.integers(2, 5),
        seed=st.integers(0, 3),
    )
    def test_edit_sweep(self, la, lb, w, seed):
        a = random_sequence(la, seed=seed)
        b = random_sequence(lb, seed=seed + 100)
        program = generate(edit_distance_spec(a, b, tile_width=w))
        assert_bit_identical(program, {"LA": la, "LB": lb})

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(0, 7), w=st.integers(2, 4))
    def test_delayed_sweep(self, n, w):
        program = generate(delayed_two_arm_spec(tile_width=w))
        assert_bit_identical(program, {"N": n})

    @settings(max_examples=15, deadline=None)
    @given(
        lens=st.lists(st.integers(0, 6), min_size=2, max_size=3),
        w=st.integers(2, 4),
        seed=st.integers(0, 3),
    )
    def test_lcs_sweep(self, lens, w, seed):
        strings = [
            random_sequence(n, seed=seed + 10 * k)
            for k, n in enumerate(lens)
        ]
        program = generate(lcs_spec(strings, tile_width=w))
        params = {f"L{k+1}": n for k, n in enumerate(lens)}
        assert_bit_identical(program, params)


class TestDispatch:
    def test_auto_prefers_wavefront(self, bandit2_program):
        assert execute(bandit2_program, {"N": 4}).mode == "wavefront"

    def test_auto_steps_down_to_vector_for_keep_edges(self, bandit2_program):
        # Wavefront mode never packs interior edges, so a run that must
        # retain them (solution recovery) resolves to the per-tile
        # engine instead.
        res = execute(bandit2_program, {"N": 4}, keep_edges=True)
        assert res.mode == "vector"
        assert res.edges

    def test_forced_wavefront_rejects_keep_edges(self, bandit2_program):
        with pytest.raises(
            RuntimeExecutionError, match="cannot retain packed edges"
        ):
            execute(
                bandit2_program, {"N": 4}, mode="wavefront", keep_edges=True
            )

    def test_auto_falls_back_without_vector_kernel(self, bandit2_spec):
        spec = dataclasses.replace(bandit2_spec, vector_kernel=None)
        program = generate(spec)
        res = execute(program, {"N": 4})
        assert res.mode == "interpret"
        with pytest.raises(RuntimeExecutionError, match="no vector kernel"):
            execute(program, {"N": 4}, mode="vector")

    def test_custom_kernel_forces_interpreter(self, bandit2_program):
        res = execute(
            bandit2_program, {"N": 4},
            kernel=lambda point, deps, params: 1.0,
        )
        assert res.mode == "interpret"
        assert res.objective_value == 1.0
        with pytest.raises(RuntimeExecutionError, match="custom scalar"):
            execute(
                bandit2_program, {"N": 4},
                kernel=lambda point, deps, params: 1.0,
                mode="vector",
            )

    def test_invalid_mode_rejected(self, bandit2_program):
        with pytest.raises(RuntimeExecutionError, match="unknown execution"):
            execute(bandit2_program, {"N": 4}, mode="simd")

    def test_unsupported_reason_reporting(self, bandit2_spec):
        spec = dataclasses.replace(bandit2_spec, vector_kernel=None)
        program = generate(spec)
        reason = vector_unsupported_reason(program)
        assert reason is not None and "no vector kernel" in reason
        assert compiled_executor(program).vector_reason == reason

    def test_supported_program_has_no_reason(self, bandit2_program):
        assert vector_unsupported_reason(bandit2_program) is None
        ce = compiled_executor(bandit2_program)
        assert ce.vector_engine is not None
        assert ce.vector_reason is None


class TestVectorParityExtras:
    def test_keep_edges_parity(self, edit_program, edit_strings):
        a, b = edit_strings
        params = {"LA": len(a), "LB": len(b)}
        interp = execute(
            edit_program, params, keep_edges=True, mode="interpret"
        )
        vector = execute(edit_program, params, keep_edges=True, mode="vector")
        assert set(interp.edges) == set(vector.edges)
        for key, buf in interp.edges.items():
            assert buf.tolist() == vector.edges[key].tolist()

    def test_priority_scheme_parity(self, bandit2_program):
        for scheme in ("column-major", "level-set", "lb-first", "lb-last"):
            interp = execute(
                bandit2_program, {"N": 6},
                priority_scheme=scheme, mode="interpret",
            )
            vector = execute(
                bandit2_program, {"N": 6},
                priority_scheme=scheme, mode="vector",
            )
            assert interp.tile_order == vector.tile_order
            assert interp.objective_value == vector.objective_value
