"""Unit tests for repro._util (integer division helpers, gcd/lcm)."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import (
    as_fraction,
    ceil_div,
    floor_div,
    gcd_all,
    lcm_all,
)


class TestFloorCeilDiv:
    def test_floor_positive(self):
        assert floor_div(7, 2) == 3

    def test_floor_negative(self):
        assert floor_div(-7, 2) == -4

    def test_floor_exact(self):
        assert floor_div(-8, 2) == -4

    def test_ceil_positive(self):
        assert ceil_div(7, 2) == 4

    def test_ceil_negative(self):
        assert ceil_div(-7, 2) == -3

    def test_ceil_exact(self):
        assert ceil_div(8, 4) == 2

    def test_zero_numerator(self):
        assert floor_div(0, 5) == 0
        assert ceil_div(0, 5) == 0

    @pytest.mark.parametrize("den", [0, -1, -7])
    def test_nonpositive_denominator_rejected(self, den):
        with pytest.raises(ValueError):
            floor_div(3, den)
        with pytest.raises(ValueError):
            ceil_div(3, den)

    @given(st.integers(-10**6, 10**6), st.integers(1, 10**4))
    def test_matches_fraction_semantics(self, num, den):
        import math

        f = Fraction(num, den)
        assert floor_div(num, den) == math.floor(f)
        assert ceil_div(num, den) == math.ceil(f)

    @given(st.integers(-10**6, 10**6), st.integers(1, 10**4))
    def test_floor_le_ceil(self, num, den):
        assert floor_div(num, den) <= ceil_div(num, den)
        assert ceil_div(num, den) - floor_div(num, den) in (0, 1)


class TestGcdLcm:
    def test_gcd_empty(self):
        assert gcd_all([]) == 0

    def test_gcd_basic(self):
        assert gcd_all([12, 18, 30]) == 6

    def test_gcd_with_negatives(self):
        assert gcd_all([-12, 18]) == 6

    def test_gcd_with_zero(self):
        assert gcd_all([0, 7]) == 7

    def test_lcm_empty(self):
        assert lcm_all([]) == 1

    def test_lcm_basic(self):
        assert lcm_all([4, 6]) == 12

    def test_lcm_ignores_zero(self):
        assert lcm_all([0, 5]) == 5

    @given(st.lists(st.integers(1, 100), min_size=1, max_size=6))
    def test_lcm_divisible_by_all(self, values):
        lcm = lcm_all(values)
        assert all(lcm % v == 0 for v in values)

    @given(st.lists(st.integers(1, 100), min_size=1, max_size=6))
    def test_gcd_divides_all(self, values):
        g = gcd_all(values)
        assert all(v % g == 0 for v in values)


class TestAsFraction:
    def test_int(self):
        assert as_fraction(3) == Fraction(3)

    def test_fraction_passthrough(self):
        f = Fraction(2, 3)
        assert as_fraction(f) is f

    def test_integral_float(self):
        assert as_fraction(4.0) == Fraction(4)

    def test_non_integral_float_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(0.5)

    def test_string_rejected(self):
        with pytest.raises(TypeError):
            as_fraction("3")
