"""Smoke tests: every example script must run to completion.

Examples are user-facing documentation; a broken one is a bug.  Each is
executed in a subprocess with a scratch directory as cwd (they write
their generated artifacts next to themselves), so the subprocess
environment must carry an *absolute* path to the source tree — the
inherited ``PYTHONPATH=src`` of a typical pytest invocation would no
longer resolve from there.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"
SRC = REPO / "src"

SCRIPTS = [
    "quickstart.py",
    "clinical_trial.py",
    "sequence_alignment.py",
    "custom_problem.py",
    "solution_traceback.py",
]


def _example_env() -> dict:
    """Subprocess env with the absolute src directory on PYTHONPATH."""
    env = dict(os.environ)
    prior = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        str(SRC) if not prior else str(SRC) + os.pathsep + prior
    )
    return env


@pytest.mark.slow
@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script, tmp_path):
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        cwd=tmp_path,  # keep generated artifacts out of the repo tree
        env=_example_env(),
        timeout=600,
    )
    assert out.returncode == 0, f"{script} failed:\n{out.stderr[-2000:]}"
    assert out.stdout.strip(), f"{script} produced no output"


@pytest.mark.slow
def test_scaling_study_example():
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / "scaling_study.py")],
        capture_output=True,
        text=True,
        env=_example_env(),
        timeout=900,
    )
    assert out.returncode == 0, out.stderr[-2000:]
    assert "speedup" in out.stdout
