"""Smoke tests: every example script must run to completion.

Examples are user-facing documentation; a broken one is a bug.  Each is
executed in a subprocess with the repository's examples directory as
cwd (they write their generated artifacts next to themselves).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

SCRIPTS = [
    "quickstart.py",
    "clinical_trial.py",
    "sequence_alignment.py",
    "custom_problem.py",
    "solution_traceback.py",
]


@pytest.mark.slow
@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script, tmp_path):
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        cwd=tmp_path,  # keep generated artifacts out of the repo tree
        timeout=600,
    )
    assert out.returncode == 0, f"{script} failed:\n{out.stderr[-2000:]}"
    assert out.stdout.strip(), f"{script} produced no output"


@pytest.mark.slow
def test_scaling_study_example():
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / "scaling_study.py")],
        capture_output=True,
        text=True,
        timeout=900,
    )
    assert out.returncode == 0, out.stderr[-2000:]
    assert "speedup" in out.stdout
