"""Load balancing (Section IV-J) and the hyperplane variant (VII-B)."""

import pytest

from repro.errors import GenerationError
from repro.generator import (
    balance_dimension_cut,
    balance_hyperplane,
    build_iteration_spaces,
    compute_slab_work,
    generate,
    lb_slab_polynomial,
    total_work_polynomial,
)
from repro.polyhedra import simplex_count
from repro.problems import two_arm_spec


@pytest.fixture(scope="module")
def spaces():
    return build_iteration_spaces(two_arm_spec(tile_width=3))


PARAMS = {"N": 12}


class TestSlabWork:
    def test_slab_works_sum_to_total(self, spaces):
        works = compute_slab_work(spaces, PARAMS)
        assert sum(works.values()) == spaces.total_points(PARAMS)

    def test_slab_work_matches_per_tile_sum(self, spaces):
        works = compute_slab_work(spaces, PARAMS)
        by_slab = {}
        for tile in spaces.tiles(PARAMS):
            key = (tile[0], tile[1])  # lb dims are s1, f1
            by_slab[key] = by_slab.get(key, 0) + spaces.tile_point_count(
                tile, PARAMS
            )
        assert works == by_slab

    def test_empty_slabs_omitted(self, spaces):
        works = compute_slab_work(spaces, PARAMS)
        assert all(w > 0 for w in works.values())


class TestDimensionCut:
    @pytest.mark.parametrize("nodes", [1, 2, 3, 4, 8])
    def test_every_slab_assigned(self, spaces, nodes):
        lb = balance_dimension_cut(spaces, PARAMS, nodes)
        assert set(lb.slab_node) == set(lb.slab_work)
        assert set(lb.slab_node.values()) <= set(range(nodes))

    def test_single_node_gets_everything(self, spaces):
        lb = balance_dimension_cut(spaces, PARAMS, 1)
        assert lb.work_per_node() == [lb.total_work]
        assert lb.imbalance() == 1.0

    def test_contiguous_along_order(self, spaces):
        lb = balance_dimension_cut(spaces, PARAMS, 3)
        nodes_in_order = [lb.slab_node[s] for s in lb.slab_order]
        assert nodes_in_order == sorted(nodes_in_order)

    def test_balance_quality(self, spaces):
        lb = balance_dimension_cut(spaces, PARAMS, 4)
        assert lb.imbalance() < 1.35

    def test_balance_improves_with_resolution(self):
        # Finer tiles -> finer slabs -> better balance.
        coarse = build_iteration_spaces(two_arm_spec(tile_width=6))
        fine = build_iteration_spaces(two_arm_spec(tile_width=2))
        params = {"N": 23}
        lb_coarse = balance_dimension_cut(coarse, params, 4)
        lb_fine = balance_dimension_cut(fine, params, 4)
        assert lb_fine.imbalance() <= lb_coarse.imbalance() + 1e-9

    def test_node_of_tile(self, spaces):
        lb = balance_dimension_cut(spaces, PARAMS, 2)
        for tile in spaces.tiles(PARAMS):
            node = lb.node_of_tile(tile, spaces)
            assert node == lb.slab_node[(tile[0], tile[1])]

    def test_node_of_unknown_tile_rejected(self, spaces):
        lb = balance_dimension_cut(spaces, PARAMS, 2)
        with pytest.raises(GenerationError):
            lb.node_of_tile((99, 99, 0, 0), spaces)

    def test_zero_nodes_rejected(self, spaces):
        with pytest.raises(GenerationError):
            balance_dimension_cut(spaces, PARAMS, 0)

    def test_work_conservation(self, spaces):
        lb = balance_dimension_cut(spaces, PARAMS, 5)
        assert sum(lb.work_per_node()) == lb.total_work


class TestHyperplane:
    def test_orders_by_wavefront_level(self, spaces):
        lb = balance_hyperplane(spaces, PARAMS, 3)
        # default direction: level = -(s1 + f1) for descending dims;
        # levels must be monotone along the slab order.
        levels = [-(s[0] + s[1]) for s in lb.slab_order]
        assert levels == sorted(levels)

    def test_balance_quality(self, spaces):
        lb = balance_hyperplane(spaces, PARAMS, 4)
        assert lb.imbalance() < 1.35
        assert sum(lb.work_per_node()) == lb.total_work

    def test_custom_direction(self, spaces):
        lb = balance_hyperplane(spaces, PARAMS, 2, direction=[-2, -1])
        levels = [-2 * s[0] - s[1] for s in lb.slab_order]
        assert levels == sorted(levels)

    def test_wrong_direction_arity_rejected(self, spaces):
        with pytest.raises(GenerationError):
            balance_hyperplane(spaces, PARAMS, 2, direction=[1])

    def test_same_work_different_cut(self, spaces):
        a = balance_dimension_cut(spaces, PARAMS, 3)
        b = balance_hyperplane(spaces, PARAMS, 3)
        assert a.total_work == b.total_work
        assert a.slab_work == b.slab_work
        # but the actual assignment differs (the point of Figure 8)
        assert a.slab_node != b.slab_node


class TestEhrhartPolynomials:
    def test_total_work_polynomial_is_simplex(self):
        spec = two_arm_spec(tile_width=3)
        qp = total_work_polynomial(spec)
        for n in range(0, 12):
            assert qp(n) == simplex_count(4, n)

    def test_slab_polynomial_matches_counts(self, spaces):
        qp = lb_slab_polynomial(spaces, (0, 0))
        for n in range(qp.valid_from, qp.valid_from + 8):
            works = compute_slab_work(spaces, {"N": n})
            assert qp(n) == works.get((0, 0), 0)

    def test_total_work_needs_single_param(self):
        from repro.problems import lcs_spec

        spec = lcs_spec(["ACG", "TTA"], tile_width=3)
        with pytest.raises(GenerationError):
            total_work_polynomial(spec)


class TestProgramHelpers:
    def test_load_balance_dispatch(self):
        program = generate(two_arm_spec(tile_width=3))
        a = program.load_balance(PARAMS, 2, method="dimension-cut")
        b = program.load_balance(PARAMS, 2, method="hyperplane")
        assert a.method == "dimension-cut"
        assert b.method == "hyperplane"
        with pytest.raises(GenerationError):
            program.load_balance(PARAMS, 2, method="nope")
