"""Unit and property tests for exact affine expressions."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.polyhedra import LinExpr, parse_affine

names = st.sampled_from(["x", "y", "z", "N", "s1"])
coeffs = st.integers(-20, 20)
exprs = st.builds(
    lambda d, c: LinExpr(d, c),
    st.dictionaries(names, coeffs, max_size=4),
    coeffs,
)
envs = st.fixed_dictionaries(
    {n: st.integers(-50, 50) for n in ["x", "y", "z", "N", "s1"]}
)


class TestConstruction:
    def test_zero_coefficients_dropped(self):
        e = LinExpr({"x": 0, "y": 2})
        assert e.variables() == frozenset({"y"})

    def test_var_and_const(self):
        assert LinExpr.var("x").coeff("x") == 1
        assert LinExpr.const(5).constant == 5
        assert LinExpr.zero().is_constant()

    def test_fraction_coefficients(self):
        e = LinExpr({"x": Fraction(1, 3)})
        assert e.coeff("x") == Fraction(1, 3)

    def test_non_integral_float_rejected(self):
        with pytest.raises(TypeError):
            LinExpr({"x": 0.25})


class TestArithmetic:
    def test_add(self):
        e = LinExpr({"x": 1}, 2) + LinExpr({"x": 3, "y": 1}, -1)
        assert e.coeff("x") == 4
        assert e.coeff("y") == 1
        assert e.constant == 1

    def test_add_scalar(self):
        assert (LinExpr.var("x") + 5).constant == 5

    def test_sub_cancels(self):
        e = LinExpr.var("x") - LinExpr.var("x")
        assert e == LinExpr.zero()

    def test_rsub(self):
        e = 3 - LinExpr.var("x")
        assert e.coeff("x") == -1
        assert e.constant == 3

    def test_mul(self):
        e = LinExpr({"x": 2}, 3) * Fraction(1, 2)
        assert e.coeff("x") == 1
        assert e.constant == Fraction(3, 2)

    def test_mul_zero(self):
        assert LinExpr({"x": 5}, 7) * 0 == LinExpr.zero()

    def test_div(self):
        assert (LinExpr({"x": 4}) / 2).coeff("x") == 2

    def test_div_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            LinExpr.var("x") / 0

    @given(exprs, exprs, envs)
    def test_add_evaluates_pointwise(self, a, b, env):
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(exprs, coeffs, envs)
    def test_scale_evaluates_pointwise(self, a, c, env):
        assert (a * c).evaluate(env) == c * a.evaluate(env)

    @given(exprs)
    def test_neg_is_additive_inverse(self, a):
        assert a + (-a) == LinExpr.zero()


class TestSubstitution:
    def test_substitute_with_expr(self):
        e = LinExpr({"x": 2, "y": 1})
        out = e.substitute({"x": LinExpr({"i": 1, "t": 4})})
        assert out.coeff("i") == 2
        assert out.coeff("t") == 8
        assert out.coeff("y") == 1
        assert out.coeff("x") == 0

    def test_substitute_with_number(self):
        e = LinExpr({"x": 3}, 1)
        assert e.substitute({"x": 5}) == LinExpr.const(16)

    @given(exprs, st.integers(-10, 10), envs)
    def test_substitution_matches_evaluation(self, a, v, env):
        sub = a.substitute({"x": v})
        env2 = dict(env)
        env2["x"] = v
        assert sub.evaluate(env) == a.evaluate(env2)

    def test_evaluate_missing_variable(self):
        with pytest.raises(KeyError):
            LinExpr.var("q").evaluate({})


class TestNormalization:
    def test_scaled_integral(self):
        e = LinExpr({"x": Fraction(1, 2), "y": Fraction(1, 3)}, Fraction(1, 6))
        scaled, m = e.scaled_integral()
        assert m == 6
        assert scaled.coeff("x") == 3
        assert scaled.coeff("y") == 2
        assert scaled.constant == 1

    def test_content(self):
        assert LinExpr({"x": 4, "y": 6}, 3).content() == 2

    def test_content_requires_integral(self):
        with pytest.raises(ValueError):
            LinExpr({"x": Fraction(1, 2)}).content()

    @given(exprs)
    def test_hash_consistent_with_eq(self, a):
        b = LinExpr(dict(a.coeffs), a.constant)
        assert a == b
        assert hash(a) == hash(b)


class TestParseAffine:
    @pytest.mark.parametrize(
        "text, env, expected",
        [
            ("x", {"x": 3}, 3),
            ("2*x + 1", {"x": 3}, 7),
            ("2x - y", {"x": 3, "y": 1}, 5),
            ("-x + N", {"x": 2, "N": 10}, 8),
            ("x + y - 4", {"x": 1, "y": 2}, -1),
            ("3", {}, 3),
            ("1/2 * x", {"x": 4}, 2),
        ],
    )
    def test_examples(self, text, env, expected):
        assert parse_affine(text).evaluate(env) == expected

    @pytest.mark.parametrize("bad", ["", "x +", "* x", "x y", "2 **x"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_affine(bad)

    @given(exprs)
    def test_str_roundtrip(self, e):
        # str(e) uses the same grammar parse_affine accepts.
        assert parse_affine(str(e)) == e
