"""Iteration spaces (Section IV-E): tiling must partition the points."""

import pytest

from repro.generator import build_iteration_spaces
from repro.problems import two_arm_spec
from repro.spec import ProblemSpec


@pytest.fixture(scope="module")
def spaces():
    return build_iteration_spaces(two_arm_spec(tile_width=3))


PARAMS = {"N": 7}


class TestTilePartition:
    def test_every_point_in_exactly_one_valid_tile(self, spaces):
        valid = set(spaces.tiles(PARAMS))
        seen = {}
        for p in spaces.original_nest.iterate(PARAMS):
            tile = spaces.point_to_tile(p)
            assert tile in valid, f"point {p} falls in invalid tile {tile}"
            seen[tile] = seen.get(tile, 0) + 1
        # every valid tile is non-empty and counts match
        assert set(seen) == valid
        for tile, count in seen.items():
            assert spaces.tile_point_count(tile, PARAMS) == count

    def test_total_points(self, spaces):
        total = sum(
            spaces.tile_point_count(t, PARAMS) for t in spaces.tiles(PARAMS)
        )
        assert total == spaces.total_points(PARAMS)

    def test_local_points_map_back(self, spaces):
        for tile in spaces.tiles(PARAMS):
            for env in spaces.local_points(tile, PARAMS):
                local = tuple(env[v] for v in spaces.local_vars)
                point = spaces.global_point(tile, local)
                assert spaces.point_to_tile(point) == tile
                assert spaces.spec.constraints.satisfied({**point, **PARAMS})

    def test_tile_validity_checks(self, spaces):
        valid = set(spaces.tiles(PARAMS))
        for tile in valid:
            assert spaces.tile_is_valid(tile, PARAMS)
        assert not spaces.tile_is_valid((99, 0, 0, 0), PARAMS)
        assert not spaces.tile_is_valid((-1, 0, 0, 0), PARAMS)


class TestCoordinateConversions:
    def test_point_to_tile_floor(self, spaces):
        assert spaces.point_to_tile({"s1": 5, "f1": 0, "s2": 2, "f2": 7}) == (
            1, 0, 0, 2,
        )

    def test_local_coords(self, spaces):
        point = {"s1": 5, "f1": 1, "s2": 2, "f2": 7}
        tile = spaces.point_to_tile(point)
        local = spaces.local_coords(point, tile)
        assert local == (2, 1, 2, 1)
        assert spaces.global_point(tile, local) == point

    def test_var_naming(self, spaces):
        assert spaces.tile_var("s1") == "t_s1"
        assert spaces.local_var("f2") == "i_f2"
        assert spaces.lb_tile_vars == ("t_s1", "t_f1")


class TestNameCollisions:
    def test_prefix_avoids_user_names(self):
        spec = ProblemSpec.create(
            name="collide",
            loop_vars=["x", "t_x"],
            params=["N"],
            constraints=["x >= 0", "t_x >= 0", "x + t_x <= N"],
            templates={"a": [1, 0], "b": [0, 1]},
            tile_widths=3,
        )
        spaces = build_iteration_spaces(spec)
        names = set(spaces.tile_vars) | set(spaces.local_vars)
        assert not (names & {"x", "t_x", "N"})
        assert len(names) == 4


class TestFullTileFastPath:
    def test_interior_tile_full(self, spaces):
        # With N=7 and w=3, the origin tile (0,0,0,0) spans sums <= 8 > 7,
        # so it is clipped; find a genuinely interior configuration.
        big = {"N": 30}
        count = spaces.tile_point_count((0, 0, 0, 0), big)
        assert count == 3 ** 4  # fully interior

    def test_boundary_tile_partial(self, spaces):
        count = spaces.tile_point_count((0, 0, 0, 0), {"N": 2})
        # sum <= 2 within a 3^4 box: C(2+4,4) = 15
        assert count == 15

    def test_empty_tile(self, spaces):
        assert spaces.tile_is_empty((2, 2, 2, 2), {"N": 7})
        assert spaces.tile_point_count((2, 2, 2, 2), {"N": 7}) == 0
