"""Template validity functions (Section IV-G) against direct checks."""

import pytest

from repro.generator import build_validity
from repro.problems import delayed_two_arm_spec, lcs_spec, two_arm_spec
from repro.spec import ProblemSpec


def brute_is_valid(spec, template, point, params):
    """Oracle: is the accessed location inside the iteration space?"""
    offsets = spec.templates.as_offset_map(template)
    shifted = {v: point[v] + offsets[v] for v in spec.loop_vars}
    return spec.constraints.satisfied({**shifted, **params})


def all_points(spec, params):
    from repro.polyhedra import synthesize_loop_nest

    nest = synthesize_loop_nest(spec.constraints, list(spec.loop_vars))
    for env in nest.iterate(params):
        yield {v: env[v] for v in spec.loop_vars}


@pytest.mark.parametrize(
    "spec, params",
    [
        (two_arm_spec(tile_width=3), {"N": 5}),
        (delayed_two_arm_spec(tile_width=3), {"N": 4}),
        (lcs_spec(["ACGT", "GAT"], tile_width=3), {"L1": 4, "L2": 3}),
    ],
    ids=["bandit2", "delayed", "lcs2"],
)
def test_validity_matches_oracle_everywhere(spec, params):
    validity = build_validity(spec)
    for point in all_points(spec, params):
        env = {**point, **params}
        for name, _vec in spec.templates.items():
            assert validity.is_valid(name, env) == brute_is_valid(
                spec, name, point, params
            ), f"{name} at {point}"


class TestSharing:
    def test_bandit_checks_fully_shared(self):
        # All four unit templates can only violate the single budget
        # constraint, shifted by +1 — the paper's Section IV-G example.
        validity = build_validity(two_arm_spec(tile_width=3))
        assert len(validity.checks) == 1
        assert validity.shared_check_count() == 1
        for name in ("succ1", "fail1", "succ2", "fail2"):
            assert validity.per_template[name] == (0,)

    def test_paper_shift_example(self):
        # x1 + x2 <= N with templates <1,0> and <0,1>: both shift to the
        # same check x1 + x2 + 1 <= N.
        spec = ProblemSpec.create(
            name="ex",
            loop_vars=["x1", "x2"],
            params=["N"],
            constraints=["x1 >= 0", "x2 >= 0", "x1 + x2 <= N"],
            templates={"r1": [1, 0], "r2": [0, 1]},
            tile_widths=3,
        )
        validity = build_validity(spec)
        assert len(validity.checks) == 1
        check = validity.checks[0]
        assert check.satisfied({"x1": 2, "x2": 2, "N": 5})
        assert not check.satisfied({"x1": 3, "x2": 2, "N": 5})

    def test_negative_template_checks_lower_bounds(self):
        spec = ProblemSpec.create(
            name="neg",
            loop_vars=["x"],
            params=["L"],
            constraints=["x >= 0", "x <= L"],
            templates={"back": [-1]},
            tile_widths=3,
        )
        validity = build_validity(spec)
        # only x >= 0 can be violated by moving to x-1
        assert len(validity.checks) == 1
        assert validity.is_valid("back", {"x": 1, "L": 5})
        assert not validity.is_valid("back", {"x": 0, "L": 5})

    def test_always_valid_template(self):
        # A template moving inward never violates the one-sided system.
        spec = ProblemSpec.create(
            name="inward",
            loop_vars=["x"],
            params=["L"],
            constraints=["x >= 0", "x <= L"],
            templates={"fwd": [1]},
            tile_widths=3,
        )
        validity = build_validity(spec)
        assert not validity.always_valid("fwd")  # x <= L can be violated
        spec2 = ProblemSpec.create(
            name="free",
            loop_vars=["x", "y"],
            params=["L"],
            constraints=["x >= 0", "x <= L", "y >= 0", "y <= 3"],
            templates={"up": [1, 0], "side": [0, 1]},
            tile_widths=4,
        )
        v2 = build_validity(spec2)
        # "side" can violate y <= 3 only; "up" can violate x <= L only.
        assert v2.per_template["up"] != v2.per_template["side"]


class TestEdgeCases:
    def test_zero_templates(self):
        # Direct construction (a spec requires >= 1 template): the
        # metrics must degrade gracefully on the empty set.
        from repro.generator.validity import ValiditySet

        v = ValiditySet(checks=(), per_template={})
        assert v.shared_check_count() == 0

    def test_template_with_empty_check_set_is_always_valid(self):
        from repro.generator.validity import ValiditySet

        v = ValiditySet(checks=(), per_template={"r": ()})
        assert v.always_valid("r")
        assert v.is_valid("r", {})  # vacuous conjunction
        assert v.shared_check_count() == 0

    def test_all_shared_checks(self):
        # Every template of the bandit family needs exactly the one
        # budget check, so the shared count equals the check count.
        validity = build_validity(two_arm_spec(tile_width=3))
        assert validity.shared_check_count() == len(validity.checks) == 1
        assert not any(
            validity.always_valid(t) for t in validity.per_template
        )

    def test_unshared_check_not_counted(self):
        spec = ProblemSpec.create(
            name="unshared",
            loop_vars=["x", "y"],
            params=["L"],
            constraints=["x >= 0", "x <= L", "y >= 0", "y <= 3"],
            templates={"up": [1, 0], "side": [0, 1]},
            tile_widths=4,
        )
        v = build_validity(spec)
        # Two distinct single-use checks: nothing is shared.
        assert len(v.checks) == 2
        assert v.shared_check_count() == 0

    def test_always_valid_unknown_template_raises(self):
        validity = build_validity(two_arm_spec(tile_width=3))
        with pytest.raises(KeyError):
            validity.always_valid("nope")
