"""ProblemSpec and TemplateSet validation and dependence analysis."""

import pytest

from repro.errors import SpecError
from repro.spec import ASCENDING, DESCENDING, ProblemSpec, TemplateSet


def make_spec(**overrides):
    base = dict(
        name="demo",
        loop_vars=["x", "y"],
        params=["N"],
        constraints=["x >= 0", "y >= 0", "x + y <= N"],
        templates={"r1": [1, 0], "r2": [0, 1]},
        tile_widths=4,
        lb_dims=("x",),
    )
    base.update(overrides)
    return ProblemSpec.create(**base)


class TestTemplateSet:
    def test_from_dict(self):
        t = TemplateSet.from_dict(["x", "y"], {"a": [1, 0], "b": [-1, 1]})
        assert t.names() == ("a", "b")
        assert t.vector("b") == (-1, 1)
        assert t.as_offset_map("a") == {"x": 1, "y": 0}

    def test_wrong_arity_rejected(self):
        with pytest.raises(SpecError):
            TemplateSet.from_dict(["x", "y"], {"a": [1]})

    def test_zero_vector_rejected(self):
        with pytest.raises(SpecError):
            TemplateSet.from_dict(["x"], {"a": [0]})

    def test_empty_rejected(self):
        with pytest.raises(SpecError):
            TemplateSet.from_dict(["x"], {})

    def test_unknown_template_lookup(self):
        t = TemplateSet.from_dict(["x"], {"a": [1]})
        with pytest.raises(SpecError):
            t.vector("zz")

    def test_ghost_widths(self):
        t = TemplateSet.from_dict(
            ["x", "y"], {"a": [2, 0], "b": [-1, 1], "c": [0, -3]}
        )
        lo, hi = t.ghost_widths()
        assert lo == {"x": 1, "y": 3}
        assert hi == {"x": 2, "y": 1}
        assert t.max_reach() == {"x": 2, "y": 3}


class TestScanDirections:
    def test_positive_templates_descend(self):
        t = TemplateSet.from_dict(["x", "y"], {"a": [1, 0], "b": [0, 1]})
        assert t.scan_directions() == {"x": DESCENDING, "y": DESCENDING}

    def test_negative_templates_ascend(self):
        t = TemplateSet.from_dict(["x", "y"], {"a": [-1, 0], "b": [0, -1]})
        assert t.scan_directions() == {"x": ASCENDING, "y": ASCENDING}

    def test_only_first_nonzero_matters(self):
        # <1, -1>: first nonzero is x (positive) -> x descends; the y
        # component places no constraint on y's direction.
        t = TemplateSet.from_dict(["x", "y"], {"a": [1, -1], "b": [0, -1]})
        d = t.scan_directions()
        assert d["x"] == DESCENDING
        assert d["y"] == ASCENDING

    def test_conflicting_directions_rejected(self):
        t = TemplateSet.from_dict(["x", "y"], {"a": [1, 0], "b": [-1, 0]})
        with pytest.raises(SpecError):
            t.scan_directions()

    def test_unconstrained_defaults_descending(self):
        t = TemplateSet.from_dict(["x", "y"], {"a": [1, 1]})
        assert t.scan_directions()["y"] == DESCENDING

    def test_linear_schedule_exists(self):
        t = TemplateSet.from_dict(["x", "y"], {"a": [1, 0], "b": [0, 1]})
        assert t.has_linear_schedule()

    def test_cycle_has_no_linear_schedule(self):
        t = TemplateSet.from_dict(["x", "y"], {"a": [1, -1], "b": [-1, 1]})
        assert not t.has_linear_schedule()


class TestSpecValidation:
    def test_valid_spec(self):
        spec = make_spec()
        assert spec.dims == 2
        assert spec.tile_width_vector() == (4, 4)

    def test_empty_name(self):
        with pytest.raises(SpecError):
            make_spec(name="")

    def test_bad_identifier(self):
        with pytest.raises(SpecError):
            make_spec(loop_vars=["x", "2bad"], templates={"r": [1, 0]})

    def test_keyword_rejected(self):
        with pytest.raises(SpecError):
            make_spec(params=["for"])

    def test_reserved_name_rejected(self):
        with pytest.raises(SpecError):
            make_spec(params=["loc"])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SpecError):
            make_spec(params=["x"])

    def test_state_collision_rejected(self):
        with pytest.raises(SpecError):
            make_spec(state_name="N")

    def test_undeclared_constraint_names_rejected(self):
        with pytest.raises(SpecError):
            make_spec(constraints=["x >= 0", "q <= N"])

    def test_missing_tile_width_rejected(self):
        with pytest.raises(SpecError):
            make_spec(tile_widths={"x": 4})

    def test_nonpositive_tile_width_rejected(self):
        with pytest.raises(SpecError):
            make_spec(tile_widths={"x": 4, "y": 0})

    def test_extra_tile_width_rejected(self):
        with pytest.raises(SpecError):
            make_spec(tile_widths={"x": 4, "y": 4, "z": 4})

    def test_tile_narrower_than_reach_rejected(self):
        with pytest.raises(SpecError):
            make_spec(templates={"r1": [5, 0], "r2": [0, 1]}, tile_widths=4)

    def test_unknown_lb_dim_rejected(self):
        with pytest.raises(SpecError):
            make_spec(lb_dims=("z",))

    def test_duplicate_lb_dims_rejected(self):
        with pytest.raises(SpecError):
            make_spec(lb_dims=("x", "x"))

    def test_cyclic_templates_rejected(self):
        with pytest.raises(SpecError):
            make_spec(
                templates={"a": [1, -1], "b": [-1, 1]},
                lb_dims=("x",),
            )

    def test_objective_point_must_be_complete(self):
        with pytest.raises(SpecError):
            make_spec(objective_point={"x": 0})

    def test_default_lb_is_first_dim(self):
        spec = ProblemSpec.create(
            name="d",
            loop_vars=["x", "y"],
            params=["N"],
            constraints=["x >= 0", "y >= 0", "x + y <= N"],
            templates={"r": [1, 0], "r2": [0, 1]},
            tile_widths=3,
        )
        assert spec.lb_dims == ("x",)

    def test_objective_default_is_origin(self):
        assert make_spec().objective({"N": 9}) == {"x": 0, "y": 0}

    def test_describe_mentions_everything(self):
        text = make_spec().describe()
        assert "demo" in text
        assert "r1" in text
        assert "tile widths" in text
