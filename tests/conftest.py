"""Shared fixtures: specs and generated programs, cached per session.

Generation (Fourier–Motzkin, loop synthesis) is deterministic and
moderately expensive for the 6-D problems, so programs are generated
once and shared; they are immutable analysis products.
"""

from __future__ import annotations

import shutil

import pytest

from repro.generator import generate
from repro.problems import (
    delayed_two_arm_spec,
    edit_distance_spec,
    lcs_spec,
    msa_spec,
    random_sequence,
    three_arm_spec,
    two_arm_spec,
)


@pytest.fixture(scope="session")
def bandit2_spec():
    return two_arm_spec(tile_width=3)


@pytest.fixture(scope="session")
def bandit2_program(bandit2_spec):
    return generate(bandit2_spec)


@pytest.fixture(scope="session")
def bandit2_w4_program():
    return generate(two_arm_spec(tile_width=4))


@pytest.fixture(scope="session")
def bandit3_program():
    return generate(three_arm_spec(tile_width=3))


@pytest.fixture(scope="session")
def delayed_program():
    return generate(delayed_two_arm_spec(tile_width=3))


@pytest.fixture(scope="session")
def edit_strings():
    return random_sequence(14, seed=11), random_sequence(11, seed=22)


@pytest.fixture(scope="session")
def edit_program(edit_strings):
    a, b = edit_strings
    return generate(edit_distance_spec(a, b, tile_width=4))


@pytest.fixture(scope="session")
def lcs3_strings():
    return [random_sequence(8 + k, seed=33 + k) for k in range(3)]


@pytest.fixture(scope="session")
def lcs3_program(lcs3_strings):
    return generate(lcs_spec(lcs3_strings, tile_width=3))


@pytest.fixture(scope="session")
def msa3_program(lcs3_strings):
    return generate(msa_spec(lcs3_strings, tile_width=3))


@pytest.fixture(scope="session")
def gcc_available():
    return shutil.which("gcc") is not None


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running end-to-end tests (C compilation etc.)"
    )
