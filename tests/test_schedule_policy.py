"""The pluggable schedule-policy layer (`runtime/scheduler.py`).

`TileScheduler` delegates ready-set management to a `SchedulePolicy`:
the dynamic priority heap (the paper's protocol, the default) or the
static wavefront-level policy (per-rank level buckets released at
arrival barriers — no heap, no per-tile pending counters).  The
contract these tests pin:

* numerics are policy-blind — objectives and every recorded cell are
  bit-identical between `schedule="dynamic"` and `"static"`, across
  rank counts and backends;
* the communication protocol is policy-blind — cross-rank message
  counts are equal, and both match the simulator's `messages` for the
  same machine shape;
* static traces are deterministic (two runs byte-identical) and
  level-ordered (a tile's level never decreases within a rank's
  dispatch order);
* `wavefront_levels()` is cached per graph object and never leaks
  across differently-shaped graphs of the same problem;
* the pass-3 audit's RPR033 fires when the cached levels disagree with
  the recomputed longest-path levels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RuntimeExecutionError
from repro.runtime import (
    SCHEDULE_POLICIES,
    TileGraph,
    TileScheduler,
    encode_events,
    execute,
    tile_graph,
)
from repro.simulate import MachineModel, simulate_program

CASES = [
    ("bandit2_program", {"N": 8}),
    ("delayed_program", {"N": 8}),
    ("lcs3_program", {"L1": 8, "L2": 9, "L3": 10}),
    ("edit_program", {"LA": 14, "LB": 11}),
]


def _case(request, name):
    program = request.getfixturevalue(name)
    params = dict(next(p for n, p in CASES if n == name))
    return program, params


class TestBitIdentity:
    @pytest.mark.parametrize("name", [n for n, _ in CASES])
    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_static_matches_dynamic_values(self, request, name, ranks):
        program, params = _case(request, name)
        dyn = execute(
            program, params, ranks=ranks, record_values=True,
            schedule="dynamic",
        )
        stat = execute(
            program, params, ranks=ranks, record_values=True,
            schedule="static",
        )
        assert stat.objective_value == dyn.objective_value
        assert stat.values == dyn.values
        assert stat.cells_computed == dyn.cells_computed
        assert stat.tiles_executed == dyn.tiles_executed
        if ranks > 1:
            assert stat.cross_rank_messages == dyn.cross_rank_messages
            assert stat.cross_rank_cells == dyn.cross_rank_cells

    @pytest.mark.parametrize("mode", ["interpret", "wavefront"])
    def test_static_matches_dynamic_across_modes(
        self, bandit2_program, mode
    ):
        dyn = execute(
            bandit2_program, {"N": 8}, mode=mode, record_values=True
        )
        stat = execute(
            bandit2_program, {"N": 8}, mode=mode, record_values=True,
            schedule="static",
        )
        assert stat.objective_value == dyn.objective_value
        assert stat.values == dyn.values

    def test_process_backend_static(self, lcs3_program):
        params = {"L1": 8, "L2": 9, "L3": 10}
        inline = execute(lcs3_program, params, schedule="static")
        proc = execute(
            lcs3_program, params, ranks=2, backend="process",
            schedule="static",
        )
        assert proc.objective_value == inline.objective_value
        assert proc.schedule == "static"

    def test_simulator_message_parity(self, bandit2_program):
        params = {"N": 10}
        executed = execute(
            bandit2_program, params, ranks=2, schedule="static"
        )
        sim = simulate_program(
            bandit2_program,
            params,
            MachineModel(nodes=2, cores_per_node=4),
            schedule="static",
        )
        assert sim.messages == executed.cross_rank_messages

    def test_simulator_static_runs_all_tiles(self, lcs3_program):
        params = {"L1": 8, "L2": 9, "L3": 10}
        dyn = simulate_program(
            lcs3_program, params, MachineModel(nodes=1, cores_per_node=4)
        )
        stat = simulate_program(
            lcs3_program,
            params,
            MachineModel(nodes=1, cores_per_node=4),
            schedule="static",
        )
        # Same tiles, same work; only the timing policy differs — and
        # static pays no dequeue lock, so its serial baseline is no
        # larger.
        assert sum(stat.tiles_per_node) == sum(dyn.tiles_per_node)
        assert stat.total_cells == dyn.total_cells
        assert stat.serial_time_s <= dyn.serial_time_s


class TestResultMetadata:
    def test_result_records_schedule_and_widths(self, bandit2_program):
        res = execute(bandit2_program, {"N": 6}, schedule="static")
        assert res.schedule == "static"
        assert res.tile_widths == dict(bandit2_program.spec.tile_widths)
        default = execute(bandit2_program, {"N": 6})
        assert default.schedule == "dynamic"

    def test_unknown_schedule_rejected(self, bandit2_program):
        with pytest.raises(RuntimeExecutionError, match="schedule"):
            execute(bandit2_program, {"N": 6}, schedule="greedy")


class TestStaticTrace:
    def test_static_trace_deterministic(self, bandit2_program):
        traces = [
            encode_events(
                execute(
                    bandit2_program, {"N": 8}, ranks=2,
                    record_events=True, schedule="static",
                ).events
            )
            for _ in range(2)
        ]
        assert traces[0] == traces[1]

    def test_static_dispatch_is_level_ordered(self, bandit2_program):
        graph = tile_graph(bandit2_program, {"N": 8})
        levels = graph.wavefront_levels().tolist()
        res = execute(
            bandit2_program, {"N": 8}, graph=graph,
            record_events=True, schedule="static",
        )
        last_level = None
        for ev in res.events:
            if ev.kind != "tile_start":
                continue
            level = levels[graph.row_of(ev.tile)]
            if last_level is not None:
                assert level >= last_level
            last_level = level


class TestSchedulerUnits:
    def test_policy_names(self, bandit2_program):
        graph = TileGraph.build(bandit2_program, {"N": 7})
        assert SCHEDULE_POLICIES == ("dynamic", "static")
        for schedule in SCHEDULE_POLICIES:
            sched = TileScheduler(graph, schedule=schedule)
            assert sched.schedule == schedule
            assert sched.policy.name == schedule
        with pytest.raises(RuntimeExecutionError, match="schedule"):
            TileScheduler(graph, schedule="nope")

    def test_static_has_no_priority_array(self, bandit2_program):
        graph = TileGraph.build(bandit2_program, {"N": 7})
        assert TileScheduler(graph, schedule="static").prio is None
        assert TileScheduler(graph).prio is not None

    def test_static_level_barrier_release(self, bandit2_program):
        graph = TileGraph.build(bandit2_program, {"N": 7})
        levels = graph.wavefront_levels().tolist()
        sched = TileScheduler(graph, schedule="static")
        sched.seed()
        # Draining one full level (ready -> run -> deliver) releases
        # exactly the next level, in row order.
        drained = 0
        current = 0
        while sched.finished < len(levels):
            rows = []
            while sched.has_ready(0):
                rows.append(sched.start_tile(0))
            assert rows == sorted(rows)
            assert all(levels[r] == current for r in rows)
            for r in rows:
                for consumer, _, cells, _ in sched.outgoing(r):
                    sched.send_edge(r, consumer, cells=cells)
                    sched.deliver_edge(consumer)
                list(sched.consume_edges(r))
                sched.finish_tile(r)
            drained += len(rows)
            current += 1
        assert drained == len(levels)

    def test_static_over_delivery_raises(self, bandit2_program):
        # Static readiness is level-granular: the policy detects
        # over-delivery once a (rank, level) arrival counter exceeds
        # the level's precomputed expected total.
        graph = TileGraph.build(bandit2_program, {"N": 7})
        levels = graph.wavefront_levels().tolist()
        indeg = graph.dependency_count_array().tolist()
        sched = TileScheduler(graph, schedule="static")
        sched.seed()
        row = sched.start_tile(0)
        consumers = [c for c, _, _, _ in sched.outgoing(row)]
        if not consumers:
            pytest.skip("tile has no consumers")
        target = consumers[0]
        expected_total = sum(
            indeg[r] if indeg[r] else 1
            for r in range(len(levels))
            if levels[r] == levels[target]
        )
        for _ in range(expected_total):
            sched.deliver_edge(target)
        with pytest.raises(RuntimeExecutionError, match="more edges"):
            sched.deliver_edge(target)

    def test_static_pop_batch_returns_whole_level(self, bandit2_program):
        graph = TileGraph.build(bandit2_program, {"N": 7})
        levels = np.asarray(graph.wavefront_levels())
        sched = TileScheduler(graph, batch=True, schedule="static")
        sched.seed()
        rows = sched.start_batch(0)
        expected = sorted(np.flatnonzero(levels == 0).tolist())
        assert sorted(rows) == expected


class TestWavefrontLevelsCache:
    def test_cache_hit_same_object(self, bandit2_program):
        graph = tile_graph(bandit2_program, {"N": 9})
        first = graph.wavefront_levels()
        assert graph.wavefront_levels() is first

    def test_no_staleness_across_shapes(self, bandit2_program):
        small = TileGraph.build(bandit2_program, {"N": 6})
        large = TileGraph.build(bandit2_program, {"N": 11})
        lv_small = small.wavefront_levels()
        lv_large = large.wavefront_levels()
        assert len(lv_small) == len(small.tile_tuples)
        assert len(lv_large) == len(large.tile_tuples)
        assert len(lv_small) != len(lv_large)
        # Re-asking either graph still answers for *its* shape.
        assert len(small.wavefront_levels()) == len(small.tile_tuples)
        assert len(large.wavefront_levels()) == len(large.tile_tuples)

    def test_levels_are_longest_paths(self, bandit2_program):
        graph = TileGraph.build(bandit2_program, {"N": 8})
        levels = graph.wavefront_levels().tolist()
        for row in range(len(graph.tile_tuples)):
            prods = [p for p, _ in graph.producer_edges(row)]
            if prods:
                assert levels[row] == 1 + max(levels[p] for p in prods)
            else:
                assert levels[row] == 0


class TestStaticLevelAudit:
    def test_audit_clean_on_builtin(self, bandit2_program):
        from repro.analysis.schedule_audit import audit_schedule

        diags = audit_schedule(bandit2_program, {"N": 7})
        assert not [d for d in diags if d.code == "RPR033"]

    def test_rpr033_fires_on_corrupt_levels(self, bandit2_program):
        from repro.analysis.schedule_audit import _static_level_violations
        from repro.generator.tile_deps import tile_dependency_map

        graph = TileGraph.build(bandit2_program, {"N": 7})
        row_of = {t: r for r, t in enumerate(graph.tile_tuples)}
        dep_map = tile_dependency_map(bandit2_program.spec)
        tiles = graph.tiles
        expected = {
            tile: [
                tuple(t + d for t, d in zip(tile, delta))
                for delta in dep_map
                if tuple(t + d for t, d in zip(tile, delta)) in tiles
            ]
            for tile in graph.tile_tuples
        }
        assert _static_level_violations(graph, row_of, expected) == []
        bogus = np.zeros(len(graph.tile_tuples), dtype=np.int64)
        graph.wavefront_levels = lambda: bogus  # shadow the method
        violations = _static_level_violations(graph, row_of, expected)
        assert violations
        assert "level" in violations[0]
