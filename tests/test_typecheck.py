"""Strict typing gate for the analysis package (mirrors the CI job).

The diagnostics framework is the repo's stable public reporting
surface, so ``src/repro/analysis/`` is held to ``mypy --strict`` (with
imports into the partially-hinted rest of the repo followed silently).
The schedule/width tuner's on-disk registry is likewise a stable
contract, so ``src/repro/runtime/tuner.py`` joins the strict set.
Skipped when mypy is not installed — CI installs it explicitly.
"""

import pathlib
import subprocess
import sys

import pytest

mypy = pytest.importorskip("mypy")

REPO = pathlib.Path(__file__).resolve().parent.parent


def test_analysis_package_is_strict_clean():
    proc = subprocess.run(
        [
            sys.executable, "-m", "mypy", "--strict",
            "--follow-imports=silent", "--ignore-missing-imports",
            str(REPO / "src" / "repro" / "analysis"),
            str(REPO / "src" / "repro" / "runtime" / "tuner.py"),
        ],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
