"""The tiled in-process runtime vs independent reference solvers."""

import pytest

from repro.errors import RuntimeExecutionError
from repro.generator import generate
from repro.problems import (
    delayed_two_arm_reference,
    edit_distance_reference,
    lcs_reference,
    msa_reference,
    three_arm_reference,
    two_arm_reference,
    two_arm_spec,
)
from repro.runtime import TileGraph, execute, solve_reference


class TestBandit2:
    @pytest.mark.parametrize("n", [0, 1, 2, 5, 9])
    def test_matches_oracle(self, bandit2_program, n):
        res = execute(bandit2_program, {"N": n})
        assert res.objective_value == pytest.approx(
            two_arm_reference(n), abs=1e-12
        )

    def test_matches_untiled_scan_exactly(self, bandit2_program):
        tiled = execute(bandit2_program, {"N": 8}, record_values=True)
        untiled = solve_reference(bandit2_program, {"N": 8}, record_values=True)
        assert tiled.values == untiled.values

    def test_tile_width_invariance(self):
        values = []
        for w in (2, 3, 5, 9):
            program = generate(two_arm_spec(tile_width=w))
            values.append(execute(program, {"N": 8}).objective_value)
        assert len(set(values)) == 1

    def test_priority_scheme_invariance(self, bandit2_program):
        values = {
            scheme: execute(
                bandit2_program, {"N": 7}, priority_scheme=scheme
            ).objective_value
            for scheme in ("column-major", "level-set", "lb-first", "lb-last")
        }
        assert len(set(values.values())) == 1

    def test_execution_respects_dependencies(self, bandit2_program):
        res = execute(bandit2_program, {"N": 7})
        graph = TileGraph.build(bandit2_program, {"N": 7})
        position = {t: i for i, t in enumerate(res.tile_order)}
        for tile in graph.tiles:
            for producer in graph.producers[tile]:
                assert position[producer] < position[tile]

    def test_counts(self, bandit2_program):
        res = execute(bandit2_program, {"N": 7})
        graph = TileGraph.build(bandit2_program, {"N": 7})
        assert res.tiles_executed == len(graph.tiles)
        assert res.cells_computed == graph.total_work()

    def test_prebuilt_graph_reused(self, bandit2_program):
        graph = TileGraph.build(bandit2_program, {"N": 6})
        a = execute(bandit2_program, {"N": 6}, graph=graph)
        b = execute(bandit2_program, {"N": 6})
        assert a.objective_value == b.objective_value

    def test_value_at(self, bandit2_program):
        res = execute(bandit2_program, {"N": 5}, record_values=True)
        v = res.value_at(
            {"s1": 0, "f1": 0, "s2": 0, "f2": 0},
            bandit2_program.spec.loop_vars,
        )
        assert v == res.objective_value

    def test_value_at_requires_recording(self, bandit2_program):
        res = execute(bandit2_program, {"N": 5})
        with pytest.raises(RuntimeExecutionError):
            res.value_at(
                {"s1": 0, "f1": 0, "s2": 0, "f2": 0},
                bandit2_program.spec.loop_vars,
            )


class TestOtherProblems:
    def test_bandit3(self, bandit3_program):
        res = execute(bandit3_program, {"N": 5})
        assert res.objective_value == pytest.approx(
            three_arm_reference(5), abs=1e-12
        )

    def test_delayed(self, delayed_program):
        res = execute(delayed_program, {"N": 6})
        assert res.objective_value == pytest.approx(
            delayed_two_arm_reference(6), abs=1e-12
        )

    def test_edit_distance(self, edit_program, edit_strings):
        a, b = edit_strings
        res = execute(edit_program, {"LA": len(a), "LB": len(b)})
        assert res.objective_value == edit_distance_reference(a, b)

    def test_edit_distance_prefix(self, edit_program, edit_strings):
        # Running with smaller parameters solves the prefix problem.
        a, b = edit_strings
        res = execute(
            edit_program,
            {"LA": 6, "LB": 5},
            record_values=True,
        )
        assert res.values[(6, 5)] == edit_distance_reference(a[:6], b[:5])

    def test_lcs3(self, lcs3_program, lcs3_strings):
        params = {f"L{k+1}": len(s) for k, s in enumerate(lcs3_strings)}
        res = execute(lcs3_program, params)
        assert res.objective_value == lcs_reference(lcs3_strings)

    def test_msa3(self, msa3_program, lcs3_strings):
        params = {f"L{k+1}": len(s) for k, s in enumerate(lcs3_strings)}
        res = execute(msa3_program, params)
        assert res.objective_value == pytest.approx(
            msa_reference(lcs3_strings), abs=1e-9
        )

    def test_every_cell_matches_reference_scan(self, lcs3_program, lcs3_strings):
        params = {f"L{k+1}": len(s) for k, s in enumerate(lcs3_strings)}
        tiled = execute(lcs3_program, params, record_values=True)
        untiled = solve_reference(lcs3_program, params, record_values=True)
        assert tiled.values == untiled.values


class TestKernelHandling:
    def test_missing_kernel_rejected(self, bandit2_spec):
        import dataclasses

        spec = dataclasses.replace(
            bandit2_spec, kernel=None, vector_kernel=None
        )
        program = generate(spec)
        with pytest.raises(RuntimeExecutionError):
            execute(program, {"N": 4})

    def test_vector_kernel_alone_suffices(self, bandit2_spec):
        # A spec with only a vector kernel is runnable: auto mode picks
        # the fast path, which needs no Python kernel.
        import dataclasses

        spec = dataclasses.replace(bandit2_spec, kernel=None)
        program = generate(spec)
        res = execute(program, {"N": 4})
        assert res.mode == "wavefront"
        assert res.objective_value == pytest.approx(
            two_arm_reference(4), abs=1e-12
        )

    def test_kernel_override(self, bandit2_program):
        # Count reachable cells instead of solving the bandit.
        res = execute(
            bandit2_program, {"N": 5}, kernel=lambda point, deps, params: 1.0
        )
        assert res.objective_value == 1.0

    def test_kernel_sees_validity_none(self, bandit2_program):
        seen = []

        def probe(point, deps, params):
            if all(v == 0 for v in point.values()):
                seen.append(dict(deps))
            return 0.0

        execute(bandit2_program, {"N": 3}, kernel=probe)
        assert len(seen) == 1
        assert all(v is not None for v in seen[0].values())

    def test_kernel_sees_none_at_boundary(self, bandit2_program):
        rows = []

        def probe(point, deps, params):
            total = sum(point.values())
            if total == params["N"]:
                rows.append(all(v is None for v in deps.values()))
            return 0.0

        execute(bandit2_program, {"N": 3}, kernel=probe)
        assert rows and all(rows)


class TestObjectiveHandling:
    def test_objective_outside_run_is_none(self, edit_program):
        # Prefix run: the spec's objective cell (full lengths) is never
        # computed, so the result reports None rather than a stale value.
        res = execute(edit_program, {"LA": 3, "LB": 2})
        assert res.objective_value is None

    def test_zero_size_instance(self, bandit2_program):
        res = execute(bandit2_program, {"N": 0})
        assert res.cells_computed == 1
        assert res.objective_value == 0.0

    def test_memory_snapshot_keys(self, bandit2_program):
        res = execute(bandit2_program, {"N": 5})
        assert set(res.memory) == {
            "live_cells",
            "live_edges",
            "peak_cells",
            "peak_edges",
            "total_packed_cells",
            "total_edges",
        }

    def test_keep_edges_returns_buffers(self, bandit2_program):
        res = execute(bandit2_program, {"N": 5}, keep_edges=True)
        assert res.edges is not None
        assert len(res.edges) == res.memory["total_edges"]
        assert sum(len(b) for b in res.edges.values()) == res.memory[
            "total_packed_cells"
        ]

    def test_edges_not_kept_by_default(self, bandit2_program):
        assert execute(bandit2_program, {"N": 5}).edges is None


class TestCompiledArtifactCaching:
    def test_scanner_compiled_once_per_program(self, monkeypatch):
        # The local-space scanner is loop-invariant: one compilation per
        # program, shared by every tile of every run — not one per tile
        # (the old behaviour) and not one per execute() call either.
        import repro.runtime.executor as executor_mod

        real = executor_mod.compile_scanner
        calls = []

        def counting(nest, directions=None):
            calls.append(1)
            return real(nest, directions)

        monkeypatch.setattr(executor_mod, "compile_scanner", counting)
        program = generate(two_arm_spec(tile_width=3))
        execute(program, {"N": 7}, mode="interpret")
        assert len(calls) == 1
        execute(program, {"N": 7}, mode="interpret")
        assert len(calls) == 1  # cached CompiledExecutor reused

    def test_compiled_executor_cached_on_program(self, bandit2_program):
        from repro.runtime import compiled_executor

        assert compiled_executor(bandit2_program) is compiled_executor(
            bandit2_program
        )


class TestInterpreterEnvReuse:
    def test_kernel_observes_correct_params_and_points(self, bandit2_program):
        # The interpreter reuses its env dicts across points; a kernel
        # must still see pristine params and per-point coordinates.
        seen_points = []

        def probe(point, deps, params):
            assert set(params) == {"N"}
            assert params["N"] == 6
            seen_points.append(tuple(point[v] for v in "s1 f1 s2 f2".split()))
            return float(sum(point.values()))

        res = execute(
            bandit2_program, {"N": 6}, kernel=probe, record_values=True
        )
        assert len(seen_points) == len(set(seen_points)) == res.cells_computed
        for key, value in res.values.items():
            assert value == float(sum(key))

    def test_point_mutation_by_kernel_is_harmless(self, bandit2_program):
        # A kernel that mutates its point dict must not corrupt later
        # points (each point's coordinates are rewritten in full).
        def vandal(point, deps, params):
            out = float(sum(point.values()))
            for k in point:
                point[k] = -999
            return out

        res = execute(bandit2_program, {"N": 5}, kernel=vandal,
                      record_values=True)
        for key, value in res.values.items():
            assert value == float(sum(key))
