"""Tile priority schemes (Section V-B, Figures 4 and 5)."""

import pytest

from repro.errors import GenerationError
from repro.generator import PRIORITY_SCHEMES, make_priority
from repro.problems import edit_distance_spec, two_arm_spec


@pytest.fixture(scope="module")
def bandit():
    return two_arm_spec(tile_width=3)


@pytest.fixture(scope="module")
def edit():
    # negative templates -> ascending scan
    return edit_distance_spec("ACGTACC", "GATTACA", tile_width=3)


class TestColumnMajor:
    def test_descending_prefers_high_tiles(self, bandit):
        prio = make_priority(bandit, "column-major")
        # execution goes from high indices down; high tile pops first.
        assert prio((3, 0, 0, 0)) < prio((2, 0, 0, 0))
        assert prio((2, 1, 0, 0)) < prio((2, 0, 1, 0))

    def test_ascending_prefers_low_tiles(self, edit):
        prio = make_priority(edit, "column-major")
        assert prio((0, 0)) < prio((1, 0))
        assert prio((0, 1)) < prio((1, 0))

    def test_total_order_is_lexicographic(self, bandit):
        prio = make_priority(bandit, "column-major")
        tiles = [(a, b, 0, 0) for a in range(3) for b in range(3)]
        ordered = sorted(tiles, key=prio)
        assert ordered == sorted(
            tiles, key=lambda t: (-t[0], -t[1], -t[2], -t[3])
        )


class TestLevelSet:
    def test_wavefront_major(self, bandit):
        prio = make_priority(bandit, "level-set")
        # deeper wavefront (larger total for descending) pops first
        assert prio((2, 2, 0, 0)) < prio((3, 0, 0, 0))
        assert prio((1, 1, 1, 1)) < prio((3, 0, 0, 0))

    def test_ties_break_lexicographically(self, bandit):
        prio = make_priority(bandit, "level-set")
        assert prio((2, 1, 0, 0)) < prio((1, 2, 0, 0))


class TestLbFirst:
    def test_downstream_lb_tiles_pop_first(self, bandit):
        # lb dims (s1, f1) descending scan: downstream = smaller index.
        prio = make_priority(bandit, "lb-first")
        assert prio((1, 0, 0, 0)) < prio((2, 0, 0, 0))
        assert prio((1, 1, 0, 0)) < prio((1, 2, 0, 0))

    def test_non_lb_dims_stay_column_major(self, bandit):
        prio = make_priority(bandit, "lb-first")
        assert prio((1, 1, 2, 0)) < prio((1, 1, 1, 0))

    def test_lb_last_is_opposite_on_lb_dims(self, bandit):
        first = make_priority(bandit, "lb-first")
        last = make_priority(bandit, "lb-last")
        a, b = (1, 0, 0, 0), (2, 0, 0, 0)
        assert (first(a) < first(b)) != (last(a) < last(b))

    def test_ascending_problem_downstream_is_larger(self, edit):
        prio = make_priority(edit, "lb-first")
        # lb dim is i (ascending): downstream = larger i pops first.
        assert prio((2, 0)) < prio((1, 0))


class TestDispatch:
    def test_all_schemes_constructible(self, bandit):
        for scheme in PRIORITY_SCHEMES:
            fn = make_priority(bandit, scheme)
            assert isinstance(fn((0, 0, 0, 0)), tuple)

    def test_unknown_scheme_rejected(self, bandit):
        with pytest.raises(GenerationError):
            make_priority(bandit, "fifo")

    def test_keys_are_total_and_deterministic(self, bandit):
        prio = make_priority(bandit, "lb-first")
        tiles = [(a, b, c, d) for a in range(2) for b in range(2)
                 for c in range(2) for d in range(2)]
        keys = [prio(t) for t in tiles]
        assert len(set(keys)) == len(tiles)
        assert keys == [prio(t) for t in tiles]
