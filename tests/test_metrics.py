"""Scaling-study helpers (the Figure 6 / Figure 7 machinery)."""

import pytest

from repro.simulate import (
    MachineModel,
    format_scaling_table,
    shared_memory_scaling,
    weak_scaling,
)


@pytest.fixture(scope="module")
def points(bandit2_w4_program):
    return shared_memory_scaling(
        bandit2_w4_program, {"N": 15}, core_counts=[1, 2, 4, 8]
    )


class TestSharedMemoryScaling:
    def test_baseline_is_one(self, points):
        assert points[0].cores == 1
        assert points[0].speedup == pytest.approx(1.0)
        assert points[0].efficiency == pytest.approx(1.0)

    def test_speedup_monotone(self, points):
        speedups = [p.speedup for p in points]
        assert speedups == sorted(speedups)

    def test_efficiency_bounded(self, points):
        for p in points:
            assert 0 < p.efficiency <= 1.0 + 1e-9

    def test_cells_constant(self, points):
        assert len({p.total_cells for p in points}) == 1


class TestWeakScaling:
    def test_efficiency_definition(self, bandit2_w4_program):
        def factory(nodes):
            return bandit2_w4_program, {"N": 12 + 4 * (nodes - 1)}

        pts = weak_scaling(
            factory, [1, 2], machine=MachineModel(cores_per_node=4)
        )
        assert pts[0].efficiency == pytest.approx(1.0)
        assert pts[1].nodes == 2
        # normalized throughput per node can only drop
        assert pts[1].efficiency <= 1.0 + 1e-9

    def test_work_grows(self, bandit2_w4_program):
        def factory(nodes):
            return bandit2_w4_program, {"N": 12 + 4 * (nodes - 1)}

        pts = weak_scaling(
            factory, [1, 2], machine=MachineModel(cores_per_node=4)
        )
        assert pts[1].total_cells > pts[0].total_cells


class TestFormatting:
    def test_table_contains_rows(self, points):
        text = format_scaling_table(points, "demo")
        assert "demo" in text
        assert text.count("\n") == len(points) + 1
        assert "100.0%" in text
