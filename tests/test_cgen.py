"""C backend: structural checks plus compile-and-run validation."""

import subprocess

import pytest

from repro.generator import generate
from repro.generator.cgen import emit_c_program
from repro.problems import (
    edit_distance_reference,
    three_arm_reference,
    two_arm_reference,
    two_arm_spec,
)


@pytest.fixture(scope="module")
def bandit_c(bandit2_w4_program):
    return emit_c_program(bandit2_w4_program)


class TestStructure:
    def test_contains_all_sections(self, bandit_c):
        for marker in [
            "repro_tile_work",
            "repro_tile_box",
            "repro_execute_tile",
            "repro_pack_size",
            "repro_unpack",
            "repro_priority",
            "repro_init_load_balance",
            "repro_scan_initial_tiles",
            "#pragma omp parallel",
            "#ifdef REPRO_USE_MPI",
            "MPI_Init",
            "MPI_Send",
            "int main(",
        ]:
            assert marker in bandit_c, f"missing {marker}"

    def test_user_symbols_present(self, bandit_c):
        # The Section IV-B programming interface.
        assert "long loc =" in bandit_c
        assert "loc_succ1" in bandit_c
        assert "is_valid_succ1" in bandit_c

    def test_shared_checks_emitted_once(self, bandit_c):
        # All four bandit templates share one check.
        assert bandit_c.count("int _chk0 =") == 1
        assert "int is_valid_succ1 = _chk0;" in bandit_c
        assert "int is_valid_fail2 = _chk0;" in bandit_c

    def test_template_offsets_constant(self, bandit_c):
        assert "long loc_succ1 = loc + (125);" in bandit_c

    def test_ehrhart_embedded(self, bandit_c):
        assert "repro_total_work_ehrhart" in bandit_c
        assert "Ehrhart polynomial" in bandit_c

    def test_center_code_pasted(self, bandit_c):
        assert "user center-loop code" in bandit_c
        assert "(s1 + 1.0) / (s1 + f1 + 2.0)" in bandit_c

    def test_descending_loops_for_positive_templates(self, bandit_c):
        assert "--" in bandit_c  # Figure 3: descending local loops

    def test_without_ehrhart_flag(self, bandit2_w4_program):
        src = emit_c_program(bandit2_w4_program, with_ehrhart=False)
        assert "#define REPRO_HAVE_EHRHART" not in src
        assert "static long repro_total_work_ehrhart" not in src

    def test_build_instructions_in_header(self, bandit_c):
        assert "gcc -O2 -std=c99 -fopenmp" in bandit_c
        assert "mpicc" in bandit_c

    def test_deterministic_output(self, bandit2_w4_program):
        assert emit_c_program(bandit2_w4_program) == emit_c_program(
            bandit2_w4_program
        )


def _compile_and_run(src, args, tmp_path, threads=2):
    cpath = tmp_path / "prog.c"
    binpath = tmp_path / "prog"
    cpath.write_text(src)
    build = subprocess.run(
        ["gcc", "-O2", "-std=c99", "-fopenmp", str(cpath), "-o", str(binpath), "-lm"],
        capture_output=True,
        text=True,
    )
    assert build.returncode == 0, build.stderr
    run = subprocess.run(
        [str(binpath)] + [str(a) for a in args],
        capture_output=True,
        text=True,
        env={"OMP_NUM_THREADS": str(threads)},
    )
    assert run.returncode == 0, run.stderr
    return run.stdout


@pytest.mark.slow
class TestCompileAndRun:
    def test_bandit2_objective(self, bandit2_w4_program, gcc_available, tmp_path):
        if not gcc_available:
            pytest.skip("gcc not available")
        out = _compile_and_run(emit_c_program(bandit2_w4_program), [10], tmp_path)
        objective = float(
            next(l for l in out.splitlines() if l.startswith("objective")).split()[1]
        )
        assert objective == pytest.approx(two_arm_reference(10), abs=1e-9)

    def test_bandit2_ehrhart_matches_cells(
        self, bandit2_w4_program, gcc_available, tmp_path
    ):
        if not gcc_available:
            pytest.skip("gcc not available")
        out = _compile_and_run(emit_c_program(bandit2_w4_program), [9], tmp_path)
        header = next(l for l in out.splitlines() if l.startswith("tiles"))
        cells = int(header.split()[3])
        ehrhart = int(
            next(
                l for l in out.splitlines() if l.startswith("ehrhart_total")
            ).split()[1]
        )
        assert cells == ehrhart
        assert cells == bandit2_w4_program.spaces.total_points({"N": 9})

    def test_bandit3(self, bandit3_program, gcc_available, tmp_path):
        if not gcc_available:
            pytest.skip("gcc not available")
        out = _compile_and_run(emit_c_program(bandit3_program), [5], tmp_path)
        objective = float(
            next(l for l in out.splitlines() if l.startswith("objective")).split()[1]
        )
        assert objective == pytest.approx(three_arm_reference(5), abs=1e-9)

    def test_edit_distance(self, edit_program, edit_strings, gcc_available, tmp_path):
        if not gcc_available:
            pytest.skip("gcc not available")
        a, b = edit_strings
        out = _compile_and_run(
            emit_c_program(edit_program), [len(a), len(b)], tmp_path
        )
        objective = float(
            next(l for l in out.splitlines() if l.startswith("objective")).split()[1]
        )
        assert objective == edit_distance_reference(a, b)

    def test_openmp_thread_count_invariance(
        self, bandit2_w4_program, gcc_available, tmp_path
    ):
        if not gcc_available:
            pytest.skip("gcc not available")
        src = emit_c_program(bandit2_w4_program)
        outs = [
            _compile_and_run(src, [8], tmp_path, threads=t) for t in (1, 4)
        ]
        objectives = {
            next(l for l in o.splitlines() if l.startswith("objective"))
            for o in outs
        }
        assert len(objectives) == 1
