"""Vertex enumeration and boundedness certification."""

from fractions import Fraction

import pytest

from repro.errors import PolyhedronError
from repro.polyhedra import (
    ConstraintSystem,
    is_bounded,
    vertex_bounding_box,
    vertices,
)


class TestVertices:
    def test_triangle(self):
        s = ConstraintSystem.parse(["x >= 0", "y >= 0", "x + y <= 5"])
        vs = vertices(s, ["x", "y"])
        assert set(vs) == {(0, 0), (0, 5), (5, 0)}

    def test_unit_square(self):
        s = ConstraintSystem.parse(["x >= 0", "x <= 1", "y >= 0", "y <= 1"])
        vs = vertices(s, ["x", "y"])
        assert len(vs) == 4
        assert (Fraction(1), Fraction(1)) in vs

    def test_fractional_vertex(self):
        # 2x + 3y <= 6 with x,y >= 0: vertices (0,0), (3,0), (0,2).
        s = ConstraintSystem.parse(["x >= 0", "y >= 0", "2*x + 3*y <= 6"])
        vs = set(vertices(s, ["x", "y"]))
        assert vs == {(0, 0), (3, 0), (0, 2)}

    def test_non_integral_vertex_exact(self):
        # x >= 0, y >= 0, 2x + 2y <= 3: corner at (3/2, 0) etc.
        s = ConstraintSystem.parse(["x >= 0", "y >= 0", "2*x + 2*y <= 3"])
        vs = set(vertices(s, ["x", "y"]))
        # Integer tightening rewrites 2x+2y<=3 as x+y<=1 (valid over Z).
        assert vs == {(0, 0), (1, 0), (0, 1)}

    def test_3d_simplex(self):
        s = ConstraintSystem.parse(
            ["x >= 0", "y >= 0", "z >= 0", "x + y + z <= 2"]
        )
        vs = vertices(s, ["x", "y", "z"])
        assert len(vs) == 4

    def test_equality_restricts_to_segment(self):
        s = ConstraintSystem.parse(
            ["x >= 0", "y >= 0", "x + y = 4", "x <= 3"]
        )
        vs = set(vertices(s, ["x", "y"]))
        assert vs == {(0, 4), (3, 1)}

    def test_empty_polyhedron(self):
        s = ConstraintSystem.parse(["x >= 3", "x <= 1", "y >= 0", "y <= 1"])
        assert vertices(s, ["x", "y"]) == []

    def test_free_parameters_rejected(self):
        s = ConstraintSystem.parse(["x >= 0", "x <= N"])
        with pytest.raises(PolyhedronError):
            vertices(s, ["x"])

    def test_redundant_constraints_no_duplicates(self):
        s = ConstraintSystem.parse(
            ["x >= 0", "y >= 0", "x + y <= 5", "x <= 5", "y <= 5"]
        )
        vs = vertices(s, ["x", "y"])
        assert len(vs) == len(set(vs)) == 3


class TestBoundedness:
    def test_bounded_polytope(self):
        s = ConstraintSystem.parse(["x >= 0", "y >= 0", "x + y <= 5"])
        assert is_bounded(s, ["x", "y"])

    def test_unbounded_halfspace(self):
        s = ConstraintSystem.parse(["x >= 0", "y >= 0"])
        assert not is_bounded(s, ["x", "y"])

    def test_unbounded_in_one_direction(self):
        s = ConstraintSystem.parse(["x >= 0", "x <= 4", "y >= 0"])
        assert not is_bounded(s, ["x", "y"])

    def test_line_constrained(self):
        s = ConstraintSystem.parse(["x + y = 2", "x >= 0", "x <= 2", "y >= 0"])
        assert is_bounded(s, ["x", "y"])


class TestBoundingBox:
    def test_matches_fm_box(self):
        from repro.polyhedra import bounding_box

        s = ConstraintSystem.parse(["x >= 1", "y >= 2", "x + y <= 7"])
        vbox = vertex_bounding_box(s, ["x", "y"])
        fmbox = bounding_box(s, ["x", "y"], {})
        assert (int(vbox[0][0]), int(vbox[0][1])) == fmbox["x"]
        assert (int(vbox[1][0]), int(vbox[1][1])) == fmbox["y"]

    def test_empty_rejected(self):
        s = ConstraintSystem.parse(["x >= 3", "x <= 1"])
        with pytest.raises(PolyhedronError):
            vertex_bounding_box(s, ["x"])

    def test_tile_space_vertices_cover_tiles(self, bandit2_program):
        """Cross-check: every valid tile lies inside the vertex hull box."""
        spaces = bandit2_program.spaces
        fixed = spaces.tile_space.fix({"N": 7})
        box = vertex_bounding_box(fixed, list(spaces.tile_vars))
        for tile in spaces.tiles({"N": 7}):
            for coord, (lo, hi) in zip(tile, box):
                assert lo <= coord <= hi
