"""Static analyzer: diagnostics framework, four passes, seeded defects.

The seeded-defect corpus takes one known-good spec and plants exactly
one bug per case; each case asserts the *stable* diagnostic code in both
the text and JSON renderings, so the codes are part of the public
contract (docs/spec_format.md lists them all).
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    Diagnostic,
    RULES,
    analyze_program,
    analyze_spec,
    analyze_spec_text,
    audit_emitted_c,
    check_dependence,
    count_by_severity,
    default_params,
    has_errors,
    make_diagnostic,
    probe_params,
    render,
    render_json,
    render_text,
    sort_diagnostics,
)
from repro.errors import AnalysisError
from repro.generator import build_validity, generate
from repro.problems import REGISTRY
from repro.spec import SpecFields, parse_spec_text

#: A known-good spec: every dependency read is guarded, both templates
#: are used, the scan order is legal.  Each defect below perturbs it.
BASE = """\
problem: staircase
loop_vars: x y
params: M
tile_widths: 3

constraints:
    x >= 0
    y >= 0
    x + y <= M

templates:
    right = 1 0
    up = 0 1

center_code_py: |
    _c = float((3 * x + 5 * y) % 7)
    _best = None
    if is_valid_right:
        _best = V[loc_right]
    if is_valid_up and (_best is None or V[loc_up] < _best):
        _best = V[loc_up]
    V[loc] = _c + (0.0 if _best is None else _best)
"""


def codes(diags):
    return {d.code for d in diags}


class TestSeededDefects:
    """Each seeded defect is caught with its stable code, in both
    renderers."""

    def assert_code_in_renderings(self, diags, code):
        assert code in codes(diags)
        text = render_text(diags)
        assert code in text
        doc = json.loads(render_json(diags))
        assert any(d["code"] == code for d in doc["diagnostics"])
        assert doc["clean"] is False

    def test_base_spec_is_clean(self):
        diags = analyze_spec_text(BASE)
        assert not has_errors(diags), render_text(diags)

    def test_illegal_ordering_is_rpr010(self):
        # up = -1 1 forces x to scan downward while right forces upward:
        # no lexicographic order over (x, y) respects both.
        bad = BASE.replace("up = 0 1", "up = -1 1")
        diags = analyze_spec_text(bad)
        self.assert_code_in_renderings(diags, "RPR010")

    def test_undeclared_template_read_is_rpr022(self):
        bad = BASE.replace("V[loc_up]", "V[loc_ghost]")
        diags = analyze_spec_text(bad)
        self.assert_code_in_renderings(diags, "RPR022")

    def test_unguarded_dependency_read_is_rpr025(self):
        # Strip the is_valid_right guard: the read may now touch a
        # point outside the iteration space.
        bad = BASE.replace(
            "    if is_valid_right:\n        _best = V[loc_right]\n",
            "    _best = V[loc_right]\n",
        )
        diags = analyze_spec_text(bad)
        self.assert_code_in_renderings(diags, "RPR025")

    def test_deleted_pack_region_is_rpr030_rpr031(self):
        # Drop one delta from the generated program (both its pack plan
        # and its edge class): the audit recomputes ground truth from
        # the spec and reports the missing region and missing edges.
        spec = parse_spec_text(BASE)
        prog = generate(spec)
        victim = prog.deltas[0]
        broken = dataclasses.replace(
            prog,
            deltas=[d for d in prog.deltas if d != victim],
            delta_templates={
                k: v for k, v in prog.delta_templates.items() if k != victim
            },
            pack_plans={
                k: v for k, v in prog.pack_plans.items() if k != victim
            },
        )
        diags = analyze_program(broken)
        self.assert_code_in_renderings(diags, "RPR030")
        self.assert_code_in_renderings(diags, "RPR031")


class TestBundledProblemsClean:
    @settings(max_examples=18, deadline=None)
    @given(
        name=st.sampled_from(sorted(REGISTRY)),
        width=st.integers(min_value=3, max_value=6),
    )
    def test_bundled_problems_lint_clean(self, name, width):
        from repro.cli import _builtin_spec

        spec = _builtin_spec(name, width)
        diags = analyze_spec(spec)
        assert not has_errors(diags), f"{name}: {render_text(diags)}"


class TestDependencePass:
    def fields(self, **kw):
        base = dict(
            name="t",
            loop_vars=("x", "y"),
            params=("M",),
            constraint_lines=("x >= 0", "y >= 0", "x + y <= M"),
            templates={"right": (1, 0), "up": (0, 1)},
            tile_widths={"x": 3, "y": 3},
        )
        base.update(kw)
        return SpecFields(**base)

    def test_clean_fields(self):
        assert check_dependence(self.fields()) == []

    def test_wrong_arity_is_rpr002(self):
        diags = check_dependence(self.fields(templates={"r": (1, 0, 0)}))
        assert codes(diags) == {"RPR002"}

    def test_zero_vector_is_rpr002(self):
        diags = check_dependence(self.fields(templates={"r": (0, 0)}))
        assert codes(diags) == {"RPR002"}

    def test_opposite_scan_directions_is_rpr010(self):
        diags = check_dependence(
            self.fields(templates={"fwd": (1, 0), "bwd": (-1, 0)})
        )
        assert "RPR010" in codes(diags)

    def test_cyclic_recurrence_is_rpr011(self):
        pytest.importorskip("scipy")
        diags = check_dependence(
            self.fields(
                loop_vars=("x",),
                templates={"fwd": (1,), "bwd": (-1,)},
                tile_widths={"x": 3},
            )
        )
        assert "RPR011" in codes(diags)

    def test_narrow_tile_is_rpr012(self):
        diags = check_dependence(
            self.fields(templates={"far": (4, 0), "up": (0, 1)})
        )
        assert "RPR012" in codes(diags)

    def test_missing_width_is_rpr002(self):
        diags = check_dependence(self.fields(tile_widths={"x": 3}))
        assert "RPR002" in codes(diags)


class TestKernelLintDetails:
    def test_undefined_name_is_rpr021(self):
        bad = BASE.replace("_c = float(", "_c = float(typo_var + ")
        diags = analyze_spec_text(bad)
        assert "RPR021" in codes(diags)

    def test_unused_template_is_warning_rpr023(self):
        bad = BASE.replace(
            "    if is_valid_up and (_best is None or V[loc_up] < _best):\n"
            "        _best = V[loc_up]\n",
            "",
        )
        diags = analyze_spec_text(bad)
        rpr023 = [d for d in diags if d.code == "RPR023"]
        assert rpr023 and all(d.severity == "warning" for d in rpr023)
        assert not has_errors(diags)

    def test_read_before_write_is_rpr024(self):
        bad = BASE.replace(
            "_c = float((3 * x + 5 * y) % 7)", "_c = V[loc] + 1.0"
        )
        diags = analyze_spec_text(bad)
        assert "RPR024" in codes(diags)

    def test_never_writes_is_rpr027(self):
        bad = BASE.replace(
            "    V[loc] = _c + (0.0 if _best is None else _best)\n",
            "    _ignored = _c\n",
        )
        diags = analyze_spec_text(bad)
        assert "RPR027" in codes(diags)

    def test_syntax_error_is_rpr020(self):
        bad = BASE.replace("_best = None", "_best = = None")
        diags = analyze_spec_text(bad)
        assert "RPR020" in codes(diags)

    def test_comparison_guard_accepted(self):
        # An arithmetic guard equivalent to the validity check counts —
        # the LCS specs guard with `x1 >= 1 and x2 >= 1`.
        text = BASE.replace(
            "    if is_valid_right:\n        _best = V[loc_right]\n",
            "    if x + 1 + y <= M:\n        _best = V[loc_right]\n",
        )
        diags = analyze_spec_text(text)
        assert "RPR025" not in codes(diags)


class TestEmittedCAudit:
    @pytest.fixture()
    def spec_and_validity(self):
        spec = parse_spec_text(BASE)
        return spec, build_validity(spec)

    def test_unguarded_read_is_rpr041(self, spec_and_validity):
        spec, validity = spec_and_validity
        src = (
            "void repro_execute_tile(const long *t, double *V) {\n"
            "    long loc = 0, loc_right = 1, loc_up = 2;\n"
            "    double a = V[loc_right];\n"
            "    if (is_valid_up) a += V[loc_up];\n"
            "    V[loc] = a;\n"
            "}\n"
        )
        diags = audit_emitted_c(spec, validity, src)
        assert codes(diags) == {"RPR041"}
        assert "loc_right" in diags[0].message
        assert diags[0].line == 3

    def test_guarded_read_is_clean(self, spec_and_validity):
        spec, validity = spec_and_validity
        src = (
            "void repro_execute_tile(const long *t, double *V) {\n"
            "    if (is_valid_right && is_valid_up) {\n"
            "        V[loc] = V[loc_right] + V[loc_up];\n"
            "    }\n"
            "}\n"
        )
        assert audit_emitted_c(spec, validity, src) == []

    def test_ternary_guard_covers_true_arm_only(self, spec_and_validity):
        spec, validity = spec_and_validity
        ok = "double a = is_valid_right ? V[loc_right] : 0.0;"
        bad = "double a = is_valid_right ? 0.0 : V[loc_right];"
        tmpl = "void repro_execute_tile(void) {\n    %s\n}\n"
        assert audit_emitted_c(spec, validity, tmpl % ok) == []
        diags = audit_emitted_c(spec, validity, tmpl % bad)
        assert codes(diags) == {"RPR041"}

    def test_unclassified_parallel_variable_is_rpr040(
        self, spec_and_validity
    ):
        spec, validity = spec_and_validity
        src = (
            "static void worker(void) {\n"
            "    long n = 0;\n"
            "#pragma omp parallel\n"
            "    {\n"
            "        long local = n + 1;\n"
            "        (void)local;\n"
            "    }\n"
            "}\n"
        )
        diags = audit_emitted_c(spec, validity, src)
        assert codes(diags) == {"RPR040"}
        assert "'n'" in diags[0].message

    def test_classified_or_inner_variables_are_clean(
        self, spec_and_validity
    ):
        spec, validity = spec_and_validity
        src = (
            "static void worker(void) {\n"
            "    long n = 0;\n"
            "#pragma omp parallel shared(n)\n"
            "    {\n"
            "        long local = n + 1;\n"
            "        (void)local;\n"
            "    }\n"
            "}\n"
        )
        assert audit_emitted_c(spec, validity, src) == []

    def test_real_emitted_program_is_clean(self):
        from repro.cli import _builtin_spec
        from repro.generator.cgen import emit_c_program

        spec = _builtin_spec("bandit2", 4)
        validity = build_validity(spec)
        source = emit_c_program(generate(spec))
        assert audit_emitted_c(spec, validity, source) == []


class TestGuardAnalyzer:
    def test_lp_implication(self):
        pytest.importorskip("scipy")
        from repro.analysis.guards import implies
        from repro.polyhedra import parse_constraint

        known = parse_constraint("x1 >= 2")
        (weaker,) = parse_constraint("x1 >= 1")
        (unrelated,) = parse_constraint("x2 >= 1")
        assert implies(known, weaker)
        assert not implies(known, unrelated)

    def test_parse_comparison_rejects_noise(self):
        from repro.analysis.guards import parse_comparison

        assert parse_comparison("f(x) > 0", {"x"}) == []
        assert parse_comparison("a[i] >= 1", {"a", "i"}) == []
        assert parse_comparison("x >= 1", {"x"}) != []


class TestDiagnosticsFramework:
    def test_every_rule_has_code_severity_title(self):
        for code, rule in RULES.items():
            assert code == rule.code
            assert rule.severity in ("error", "warning", "info")
            assert rule.title

    def test_unknown_code_raises_analysis_error(self):
        with pytest.raises(AnalysisError):
            make_diagnostic("RPR999", "nope")

    def test_severity_comes_from_registry(self):
        d = make_diagnostic("RPR023", "m")
        assert d.severity == "warning"
        assert not d.is_error()

    def test_sort_is_by_location_then_code(self):
        late = make_diagnostic("RPR025", "e", problem="p", source="k", line=9)
        early = make_diagnostic("RPR023", "w", problem="p", source="k", line=2)
        assert sort_diagnostics([late, early]) == [early, late]

    def test_count_by_severity(self):
        diags = [make_diagnostic("RPR023", "w"), make_diagnostic("RPR025", "e")]
        counts = count_by_severity(diags)
        assert counts["warning"] == 1 and counts["error"] == 1

    def test_render_text_clean(self):
        assert "all checks passed" in render_text([])

    def test_render_text_summary_counts(self):
        diags = [make_diagnostic("RPR025", "e", problem="p", source="k")]
        text = render_text(diags)
        assert "RPR025" in text and "found 1 error" in text

    def test_render_json_shape(self):
        doc = json.loads(render_json([make_diagnostic("RPR023", "w")]))
        assert set(doc) == {"diagnostics", "counts", "clean"}
        assert doc["clean"] is True  # warnings alone stay clean

    def test_render_unknown_format_raises(self):
        with pytest.raises(AnalysisError):
            render([], "yaml")

    def test_diagnostic_location(self):
        d = Diagnostic(
            code="RPR041", severity="error", message="m",
            problem="p", source="emitted-c", line=7,
        )
        assert d.location() == "p:emitted-c:7"


class TestProbeParams:
    def test_default_params_match_cli(self):
        from repro.cli import _builtin_spec, _default_params

        for name in sorted(REGISTRY):
            spec = _builtin_spec(name, 4)
            assert default_params(spec) == _default_params(spec)

    def test_probe_params_capped(self):
        spec = parse_spec_text(BASE)
        params = probe_params(spec)
        assert all(v <= 64 for v in params.values())
