"""The textual problem-description format (Section IV-A)."""

import pytest

from repro.errors import ParseError
from repro.spec import format_spec, parse_spec_text

MINIMAL = """\
problem: demo
loop_vars: x y
params: N
tile_widths: 4

constraints:
    x >= 0
    y >= 0
    x + y <= N

templates:
    r1 = 1 0
    r2 = 0 1
"""


class TestParse:
    def test_minimal(self):
        spec = parse_spec_text(MINIMAL)
        assert spec.name == "demo"
        assert spec.loop_vars == ("x", "y")
        assert spec.params == ("N",)
        assert spec.tile_widths == {"x": 4, "y": 4}
        assert spec.lb_dims == ("x",)
        assert len(spec.constraints) == 3
        assert spec.templates.vector("r2") == (0, 1)

    def test_per_dimension_tile_widths(self):
        text = MINIMAL.replace("tile_widths: 4", "tile_widths: x=3 y=5")
        spec = parse_spec_text(text)
        assert spec.tile_widths == {"x": 3, "y": 5}

    def test_lb_dims_and_state(self):
        text = MINIMAL + "lb_dims: y x\nstate: W\n"
        spec = parse_spec_text(text)
        assert spec.lb_dims == ("y", "x")
        assert spec.state_name == "W"

    def test_objective_key(self):
        text = MINIMAL + "objective: x=5 y=2\n"
        spec = parse_spec_text(text)
        assert spec.objective_point == {"x": 5, "y": 2}

    def test_objective_roundtrips(self):
        text = MINIMAL + "objective: x=5 y=2\n"
        spec = parse_spec_text(text)
        again = parse_spec_text(format_spec(spec))
        assert again.objective_point == {"x": 5, "y": 2}

    def test_bad_objective_rejected(self):
        with pytest.raises(ParseError):
            parse_spec_text(MINIMAL + "objective: x:5 y=2\n")
        with pytest.raises(ParseError):
            parse_spec_text(MINIMAL + "objective: x=five y=2\n")

    def test_comments_ignored(self):
        text = "# top comment\n" + MINIMAL.replace(
            "x >= 0", "x >= 0   # nonneg"
        )
        spec = parse_spec_text(text)
        assert len(spec.constraints) == 3

    def test_code_block(self):
        text = MINIMAL + (
            "center_code_c: |\n"
            "    double v = 0;\n"
            "    if (is_valid_r1) v = V[loc_r1];\n"
            "    V[loc] = v;\n"
        )
        spec = parse_spec_text(text)
        assert "V[loc] = v;" in spec.center_code_c
        assert spec.center_code_c.startswith("double v")

    def test_code_block_dedent_preserves_nesting(self):
        text = MINIMAL + (
            "center_code_py: |\n"
            "    if is_valid_r1:\n"
            "        V[loc] = V[loc_r1]\n"
            "    else:\n"
            "        V[loc] = 0.0\n"
        )
        spec = parse_spec_text(text)
        lines = spec.center_code_py.splitlines()
        assert lines[0] == "if is_valid_r1:"
        assert lines[1] == "    V[loc] = V[loc_r1]"

    @pytest.mark.parametrize(
        "mutation",
        [
            lambda t: t.replace("problem: demo\n", ""),
            lambda t: t.replace("loop_vars: x y\n", ""),
            lambda t: t.replace("tile_widths: 4\n", ""),
            lambda t: t.replace("constraints:", "constraintz:"),
            lambda t: t.replace("templates:\n", "templates: inline\n"),
            lambda t: t + "problem: again\n",
            lambda t: t.replace("r1 = 1 0", "r1 : 1 0"),
            lambda t: t.replace("r1 = 1 0", "r1 = 1 zebra"),
            lambda t: t.replace("tile_widths: 4", "tile_widths: x:4"),
        ],
    )
    def test_malformed_rejected(self, mutation):
        with pytest.raises(ParseError):
            parse_spec_text(mutation(MINIMAL))

    def test_unexpected_indent_rejected(self):
        with pytest.raises(ParseError):
            parse_spec_text("problem: p\n    stray: indented\n")

    def test_code_key_requires_pipe(self):
        with pytest.raises(ParseError):
            parse_spec_text(MINIMAL + "center_code_c: inline\n")

    def test_duplicate_template_rejected(self):
        bad = MINIMAL + "\n"
        bad = bad.replace("r2 = 0 1", "r2 = 0 1\n    r2 = 0 1")
        with pytest.raises(ParseError):
            parse_spec_text(bad)


class TestRoundtrip:
    def test_format_then_parse(self):
        spec = parse_spec_text(
            MINIMAL
            + "lb_dims: x y\n"
            + "center_code_c: |\n    V[loc] = 1.0;\n"
            + "center_code_py: |\n    V[loc] = 1.0\n"
        )
        again = parse_spec_text(format_spec(spec))
        assert again.name == spec.name
        assert again.loop_vars == spec.loop_vars
        assert again.params == spec.params
        assert again.tile_widths == spec.tile_widths
        assert again.lb_dims == spec.lb_dims
        assert again.constraints == spec.constraints
        assert tuple(again.templates.items()) == tuple(spec.templates.items())
        assert again.center_code_c.strip() == spec.center_code_c.strip()
        assert again.center_code_py.strip() == spec.center_code_py.strip()

    def test_builtin_problems_roundtrip(self):
        from repro.problems import two_arm_spec

        spec = two_arm_spec(tile_width=5)
        again = parse_spec_text(format_spec(spec))
        assert again.loop_vars == spec.loop_vars
        assert again.constraints == spec.constraints
        assert again.tile_widths == spec.tile_widths
        assert tuple(again.templates.items()) == tuple(spec.templates.items())


class TestParseFile:
    def test_parse_spec_file(self, tmp_path):
        from repro.spec import parse_spec_file

        path = tmp_path / "demo.spec"
        path.write_text(MINIMAL)
        assert parse_spec_file(path).name == "demo"
