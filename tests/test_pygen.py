"""Python backend: the emitted standalone script must stand alone."""

import subprocess
import sys

import pytest

from repro.errors import GenerationError
from repro.generator import generate
from repro.generator.pygen import emit_python_program
from repro.problems import (
    delayed_two_arm_reference,
    lcs_reference,
    msa_reference,
    two_arm_reference,
    two_arm_spec,
)


def run_script(src, args, tmp_path):
    path = tmp_path / "prog.py"
    path.write_text(src)
    out = subprocess.run(
        [sys.executable, str(path)] + [str(a) for a in args],
        capture_output=True,
        text=True,
    )
    assert out.returncode == 0, out.stderr
    return out.stdout


def objective_of(stdout):
    return float(
        next(l for l in stdout.splitlines() if l.startswith("objective")).split()[1]
    )


class TestStructure:
    def test_no_repro_import(self, bandit2_w4_program):
        src = emit_python_program(bandit2_w4_program)
        assert "import repro" not in src
        assert "from repro" not in src

    def test_sections_present(self, bandit2_w4_program):
        src = emit_python_program(bandit2_w4_program)
        for marker in [
            "def tile_work(",
            "def tile_box(",
            "def execute_tile(",
            "def priority(",
            "def scan_tiles(",
            "PACKERS",
            "UNPACKERS",
            "def main(",
        ]:
            assert marker in src, f"missing {marker}"

    def test_requires_center_code_py(self):
        import dataclasses

        spec = dataclasses.replace(two_arm_spec(tile_width=3), center_code_py="")
        with pytest.raises(GenerationError):
            emit_python_program(generate(spec))

    def test_compiles_as_python(self, bandit2_w4_program):
        src = emit_python_program(bandit2_w4_program)
        compile(src, "prog.py", "exec")


class TestExecution:
    def test_bandit2(self, bandit2_w4_program, tmp_path):
        out = run_script(emit_python_program(bandit2_w4_program), [9], tmp_path)
        assert objective_of(out) == pytest.approx(
            two_arm_reference(9), abs=1e-9
        )

    def test_delayed(self, delayed_program, tmp_path):
        out = run_script(emit_python_program(delayed_program), [5], tmp_path)
        assert objective_of(out) == pytest.approx(
            delayed_two_arm_reference(5), abs=1e-9
        )

    def test_lcs3(self, lcs3_program, lcs3_strings, tmp_path):
        args = [len(s) for s in lcs3_strings]
        out = run_script(emit_python_program(lcs3_program), args, tmp_path)
        assert objective_of(out) == lcs_reference(lcs3_strings)

    def test_msa3(self, msa3_program, lcs3_strings, tmp_path):
        args = [len(s) for s in lcs3_strings]
        out = run_script(emit_python_program(msa3_program), args, tmp_path)
        assert objective_of(out) == pytest.approx(
            msa_reference(lcs3_strings), abs=1e-9
        )

    def test_reports_cells(self, bandit2_w4_program, tmp_path):
        out = run_script(emit_python_program(bandit2_w4_program), [9], tmp_path)
        header = next(l for l in out.splitlines() if l.startswith("tiles"))
        cells = int(header.split()[3])
        assert cells == bandit2_w4_program.spaces.total_points({"N": 9})

    def test_matches_in_process_runtime(self, bandit2_w4_program, tmp_path):
        from repro.runtime import execute

        out = run_script(emit_python_program(bandit2_w4_program), [11], tmp_path)
        in_process = execute(bandit2_w4_program, {"N": 11}).objective_value
        assert objective_of(out) == pytest.approx(in_process, abs=1e-12)
