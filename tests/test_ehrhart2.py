"""Bivariate Ehrhart reconstruction (two-parameter point counts)."""

import pytest

from repro.errors import PolyhedronError
from repro.polyhedra import ConstraintSystem, ehrhart_bivariate


class TestGrid:
    def test_rectangle(self):
        s = ConstraintSystem.parse(
            ["x >= 0", "x <= P", "y >= 0", "y <= Q"]
        )
        qp = ehrhart_bivariate(s, ["x", "y"], ("P", "Q"))
        for p in range(0, 8):
            for q in range(0, 8):
                assert qp(p, q) == (p + 1) * (q + 1)

    def test_trapezoid(self):
        # x in [0, P], y in [0, Q], x + y <= P + Q - 1 clips one corner.
        s = ConstraintSystem.parse(
            ["x >= 0", "x <= P", "y >= 0", "y <= Q", "x + y <= P + Q - 1"]
        )
        qp = ehrhart_bivariate(s, ["x", "y"], ("P", "Q"), start=(1, 1))
        for p in range(1, 7):
            for q in range(1, 7):
                assert qp(p, q) == (p + 1) * (q + 1) - 1

    def test_msa2_total_work(self):
        # The 2-sequence alignment grid: (L1 + 1)(L2 + 1) cells.
        from repro.problems import msa_spec

        spec = msa_spec(["ACGTAC", "GATT"])
        qp = ehrhart_bivariate(
            spec.constraints, list(spec.loop_vars), ("L1", "L2")
        )
        assert qp(6, 4) == 35
        assert qp(10, 10) == 121


class TestPeriodic:
    def test_halved_axis(self):
        s = ConstraintSystem.parse(
            ["x >= 0", "2*x <= P", "y >= 0", "y <= Q"]
        )
        with pytest.raises(PolyhedronError):
            ehrhart_bivariate(s, ["x", "y"], ("P", "Q"), periods=(1, 1))
        qp = ehrhart_bivariate(s, ["x", "y"], ("P", "Q"), periods=(2, 1))
        for p in range(0, 9):
            for q in range(0, 5):
                assert qp(p, q) == (p // 2 + 1) * (q + 1)

    def test_bad_period_rejected(self):
        s = ConstraintSystem.parse(["x >= 0", "x <= P", "y >= 0", "y <= Q"])
        with pytest.raises(PolyhedronError):
            ehrhart_bivariate(s, ["x", "y"], ("P", "Q"), periods=(0, 1))


class TestValidity:
    def test_valid_from_enforced(self):
        s = ConstraintSystem.parse(["x >= 0", "x <= P", "y >= 0", "y <= Q"])
        qp = ehrhart_bivariate(s, ["x", "y"], ("P", "Q"), start=(2, 3))
        with pytest.raises(PolyhedronError):
            qp(1, 5)
        with pytest.raises(PolyhedronError):
            qp(5, 2)
        assert qp(2, 3) == 12

    def test_extra_params(self):
        s = ConstraintSystem.parse(
            ["x >= 0", "x <= P", "y >= 0", "y <= Q", "x <= M"]
        )
        qp = ehrhart_bivariate(
            s, ["x", "y"], ("P", "Q"), extra_params={"M": 2}, start=(3, 0)
        )
        for p in range(3, 7):
            for q in range(0, 5):
                assert qp(p, q) == 3 * (q + 1)

    def test_degree_recorded(self):
        s = ConstraintSystem.parse(["x >= 0", "x <= P", "y >= 0", "y <= Q"])
        qp = ehrhart_bivariate(s, ["x", "y"], ("P", "Q"))
        assert qp.degree == 2
