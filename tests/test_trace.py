"""Simulator traces and utilization timelines."""

import pytest

from repro.errors import SimulationError
from repro.runtime import TileGraph
from repro.simulate import (
    MachineModel,
    TileSpan,
    render_timeline,
    simulate,
    utilization_timeline,
    validate_trace,
)


@pytest.fixture(scope="module")
def traced(bandit2_w4_program):
    graph = TileGraph.build(bandit2_w4_program, {"N": 15})
    machine = MachineModel(nodes=2, cores_per_node=4)
    lb = bandit2_w4_program.load_balance({"N": 15}, 2)
    assign = {
        t: lb.node_of_tile(t, bandit2_w4_program.spaces) for t in graph.tiles
    }
    res = simulate(graph, machine, assignment=assign, trace=True)
    return graph, machine, res


class TestTraceRecording:
    def test_one_span_per_tile(self, traced):
        graph, machine, res = traced
        assert res.spans is not None
        assert len(res.spans) == len(graph.tiles)
        assert {s.tile for s in res.spans} == graph.tiles

    def test_spans_within_makespan(self, traced):
        _, _, res = traced
        for s in res.spans:
            assert 0 <= s.start_s <= s.finish_s <= res.makespan_s + 1e-12

    def test_busy_time_matches_spans(self, traced):
        _, machine, res = traced
        by_node = [0.0] * machine.nodes
        for s in res.spans:
            by_node[s.node] += s.duration_s
        for measured, expected in zip(by_node, res.busy_s_per_node):
            assert measured == pytest.approx(expected, rel=1e-9)

    def test_trace_respects_core_capacity(self, traced):
        graph, machine, res = traced
        validate_trace(res.spans, machine.nodes, machine.cores_per_node)

    def test_no_trace_by_default(self, traced, bandit2_w4_program):
        graph, machine, _ = traced
        res = simulate(graph, machine.with_(nodes=1))
        assert res.spans is None


class TestValidator:
    def test_rejects_overlap_beyond_capacity(self):
        spans = [
            TileSpan((i,), 0, 0.0, 1.0) for i in range(3)
        ]
        with pytest.raises(SimulationError):
            validate_trace(spans, nodes=1, cores_per_node=2)

    def test_rejects_negative_duration(self):
        with pytest.raises(SimulationError):
            validate_trace([TileSpan((0,), 0, 2.0, 1.0)], 1, 1)

    def test_rejects_unknown_node(self):
        with pytest.raises(SimulationError):
            validate_trace([TileSpan((0,), 3, 0.0, 1.0)], 2, 1)


class TestTimeline:
    def test_binned_utilization_bounded(self, traced):
        _, machine, res = traced
        timeline = utilization_timeline(
            res.spans, machine.nodes, machine.cores_per_node, bins=20,
            makespan_s=res.makespan_s,
        )
        assert len(timeline) == machine.nodes
        for row in timeline:
            assert len(row) == 20
            for u in row:
                assert 0.0 <= u <= 1.0 + 1e-9

    def test_total_utilization_matches_busy(self, traced):
        _, machine, res = traced
        bins = 25
        timeline = utilization_timeline(
            res.spans, machine.nodes, machine.cores_per_node, bins=bins,
            makespan_s=res.makespan_s,
        )
        width = res.makespan_s / bins
        for node, row in enumerate(timeline):
            integrated = sum(row) * width * machine.cores_per_node
            assert integrated == pytest.approx(
                res.busy_s_per_node[node], rel=1e-6
            )

    def test_single_span_occupies_its_bins(self):
        spans = [TileSpan((0,), 0, 0.0, 0.5)]
        timeline = utilization_timeline(
            spans, nodes=1, cores_per_node=1, bins=10, makespan_s=1.0
        )
        assert timeline[0][:5] == [pytest.approx(1.0)] * 5
        assert timeline[0][5:] == [0.0] * 5

    def test_bad_bins_rejected(self):
        with pytest.raises(SimulationError):
            utilization_timeline([], 1, 1, bins=0)

    def test_render(self, traced):
        _, machine, res = traced
        text = render_timeline(
            res.spans, machine.nodes, machine.cores_per_node,
            makespan_s=res.makespan_s,
        )
        lines = text.splitlines()
        assert len(lines) == machine.nodes
        assert all(line.startswith("node") for line in lines)
        assert "%" in lines[0]

    def test_empty_trace_renders(self):
        text = render_timeline([], 1, 1)
        assert text.startswith("node  0 |")
        assert "0.0%" in text
