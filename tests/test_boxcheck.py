"""Interior-tile fast path: the box-min checker vs exhaustive scanning."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generator.boxcheck import make_box_min_checker
from repro.polyhedra import ConstraintSystem


SIMPLEX = ConstraintSystem.parse(
    ["x >= 0", "y >= 0", "x + y <= N"]
)


def brute_full(system, box_ranges, env):
    """Oracle: is every box point inside the system?"""
    for combo in itertools.product(*box_ranges.values()):
        point = dict(zip(box_ranges.keys(), combo))
        point.update(env)
        if not system.satisfied(point):
            return False
    return True


class TestChecker:
    def test_simplex_tiles(self):
        w = 3
        box = {
            "x": (({"tx": w}, 0), ({"tx": w}, w - 1)),
            "y": (({"ty": w}, 0), ({"ty": w}, w - 1)),
        }
        checker = make_box_min_checker(SIMPLEX, box)
        for tx in range(0, 5):
            for ty in range(0, 5):
                for n in (6, 9, 14):
                    env = {"tx": tx, "ty": ty, "N": n}
                    ranges = {
                        "x": range(w * tx, w * tx + w),
                        "y": range(w * ty, w * ty + w),
                    }
                    assert checker(env) == brute_full(SIMPLEX, ranges, {"N": n})

    def test_constant_bounds(self):
        box = {"x": (2, 4)}
        s = ConstraintSystem.parse(["x >= 0", "x <= M"])
        checker = make_box_min_checker(s, box)
        assert checker({"M": 4})
        assert not checker({"M": 3})

    def test_negative_coefficients_use_high_corner(self):
        # M - 2x >= 0 minimized at the high corner of x.
        s = ConstraintSystem.parse(["2*x <= M"])
        checker = make_box_min_checker(s, {"x": (1, 5)})
        assert checker({"M": 10})
        assert not checker({"M": 9})

    def test_equalities_never_full(self):
        s = ConstraintSystem.parse(["x = 3"])
        checker = make_box_min_checker(s, {"x": (3, 3)})
        assert checker({"x": 3}) is False  # conservative by design

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(0, 6),
        st.integers(0, 6),
        st.integers(0, 25),
        st.integers(1, 4),
    )
    def test_never_false_positive(self, tx, ty, n, w):
        box = {
            "x": (({"tx": w}, 0), ({"tx": w}, w - 1)),
            "y": (({"ty": w}, 0), ({"ty": w}, w - 1)),
        }
        checker = make_box_min_checker(SIMPLEX, box)
        env = {"tx": tx, "ty": ty, "N": n}
        ranges = {
            "x": range(w * tx, w * tx + w),
            "y": range(w * ty, w * ty + w),
        }
        assert checker(env) == brute_full(SIMPLEX, ranges, {"N": n})


class TestFastPathConsistency:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 18))
    def test_tile_counts_agree_with_compiled_scan(self, bandit2_program, n):
        """tile_point_count (fast path + fallback) vs brute recount."""
        spaces = bandit2_program.spaces
        from repro.polyhedra.compile import compile_counter

        counter = compile_counter(spaces.local_nest)
        for tile in spaces.tiles({"N": n}):
            env = {"N": n}
            env.update(spaces.tile_env(tile))
            assert spaces.tile_point_count(tile, {"N": n}) == counter(env)
