"""Wavefront-fused batch execution: parity, determinism, degradation.

The wavefront engine is a pure performance transformation — it must be
*bit-identical* to the per-tile vector engine, the interpreter and the
untiled ``solve_reference`` oracle on every bundled problem, at every
tile width, across every rank count.  This suite pins exactly that, plus
the dispatch/degradation contract (``mode="auto"`` never raises), the
deadlock-free guarantee of batch draining under pathological rank
partitions, and the static wavefront level invariants the batch
scheduler relies on.
"""

import dataclasses
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import RuntimeExecutionError
from repro.generator import generate
from repro.generator.validity import ValiditySet
from repro.polyhedra import Constraint
from repro.polyhedra.linexpr import LinExpr
from repro.problems import (
    bandit,
    damerau_spec,
    edit_distance_spec,
    lcs_spec,
    msa_spec,
    smith_waterman_spec,
)
from repro.runtime import (
    compiled_executor,
    execute,
    run_spmd,
    solve_reference,
    tile_graph,
)
from repro.runtime.scheduler import TileScheduler, encode_events
from repro.runtime.spmd import spmd_rank_assignment


def _problem_matrix():
    """Every vector-capable bundled problem at >= 2 tile widths."""
    out = []
    for w in (3, 4):
        out.append((f"bandit2-w{w}", bandit.two_arm_spec(tile_width=w), {"N": 7}))
    for w in (2, 3):
        out.append((f"bandit3-w{w}", bandit.three_arm_spec(tile_width=w), {"N": 4}))
    for w in (2, 3):
        out.append(
            (
                f"delayed-w{w}",
                bandit.delayed_two_arm_spec(tile_width=w),
                {"N": 5},
            )
        )
    a, b = "kitten", "sitting"
    ab = {"LA": len(a), "LB": len(b)}
    for w in (3, 4):
        out.append((f"edit-w{w}", edit_distance_spec(a, b, tile_width=w), ab))
    for w in (2, 4):
        out.append(
            (f"sw-w{w}", smith_waterman_spec(a, b, tile_width=w), ab)
        )
    for w in (2, 4):
        out.append((f"damerau-w{w}", damerau_spec(a, b, tile_width=w), ab))
    s1, s2 = "ACGTACGTTGACA", "GATTACAGGTACG"
    for w in (4, 5):
        out.append(
            (
                f"lcs2-w{w}",
                lcs_spec([s1, s2], tile_width=w),
                {"L1": len(s1), "L2": len(s2)},
            )
        )
    for w in (2, 3):
        out.append(
            (
                f"msa3-w{w}",
                msa_spec(["ACGTA", "GATTA", "CGTAT"], tile_width=w),
                {"L1": 5, "L2": 5, "L3": 5},
            )
        )
    return out


MATRIX = _problem_matrix()
MATRIX_IDS = [name for name, _, _ in MATRIX]


@pytest.fixture(scope="module", params=MATRIX, ids=MATRIX_IDS)
def case(request):
    name, spec, params = request.param
    return generate(spec), params


class TestEngineParity:
    """wavefront == vector == interpreter == solve_reference, exactly."""

    def test_all_engines_bit_identical(self, case):
        program, params = case
        wave = execute(
            program, params, mode="wavefront", record_values=True
        )
        vec = execute(program, params, mode="vector", record_values=True)
        interp = execute(
            program, params, mode="interpret", record_values=True
        )
        ref = solve_reference(program, params, record_values=True)
        assert wave.mode == "wavefront"
        assert wave.objective_value == vec.objective_value
        assert wave.objective_value == interp.objective_value
        assert wave.objective_value == ref.objective_value
        assert wave.cells_computed == vec.cells_computed
        assert wave.cells_computed == interp.cells_computed
        # Every recorded cell, not just the objective: dict equality is
        # exact float comparison.
        assert wave.values == vec.values
        assert wave.values == interp.values
        assert wave.values == ref.values

    @pytest.mark.parametrize("ranks", [2, 4])
    def test_spmd_ranks_bit_identical(self, case, ranks):
        program, params = case
        single = execute(
            program, params, mode="wavefront", record_values=True
        )
        multi = run_spmd(
            program, params, ranks=ranks, record_values=True
        )
        assert multi.mode == "wavefront"
        assert multi.objective_value == single.objective_value
        assert multi.values == single.values
        assert multi.cells_computed == single.cells_computed
        assert sum(multi.tiles_per_rank) == multi.tiles_executed

    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_event_trace_deterministic(self, case, ranks):
        program, params = case
        runs = [
            execute(
                program,
                params,
                ranks=ranks,
                mode="wavefront",
                record_events=True,
            )
            for _ in range(2)
        ]
        first, second = (encode_events(r.events) for r in runs)
        assert first == second
        # The batch trace keeps the full ready/start/done protocol; only
        # interior edge_sent transitions disappear (nothing is packed
        # within a rank).
        graph = tile_graph(program, params)
        T = len(graph.tile_tuples)
        kinds = [e.kind for e in runs[0].events]
        assert kinds.count("tile_ready") == T
        assert kinds.count("tile_start") == T
        assert kinds.count("tile_done") == T
        assert kinds.count("edge_sent") == runs[0].cross_rank_messages


@st.composite
def _bandit_case(draw):
    width = draw(st.sampled_from([2, 3, 4]))
    n = draw(st.integers(min_value=2, max_value=8))
    return width, n


class TestPropertySweep:
    """Randomized instance sweep: the fused path never diverges."""

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(_bandit_case())
    def test_bandit2_sweep(self, case):
        width, n = case
        program = generate(bandit.two_arm_spec(tile_width=width))
        wave = execute(
            program, {"N": n}, mode="wavefront", record_values=True
        )
        vec = execute(
            program, {"N": n}, mode="vector", record_values=True
        )
        assert wave.objective_value == vec.objective_value
        assert wave.values == vec.values

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=1, max_value=4),
    )
    def test_edit_distance_prefix_sweep(self, la, lb):
        # Prefix runs: the objective tile may be partially out of space,
        # exercising the per-tile fallback inside a fused batch.
        program = generate(
            edit_distance_spec("kitten", "sitting", tile_width=4)
        )
        params = {"LA": la, "LB": lb}
        wave = execute(
            program, params, mode="wavefront", record_values=True
        )
        vec = execute(program, params, mode="vector", record_values=True)
        assert wave.objective_value == vec.objective_value
        assert wave.values == vec.values


class TestBatchDrainLiveness:
    """Batch draining never deadlocks, whatever the rank partition."""

    def _parity_partitions(self, graph, ranks):
        T = len(graph.tile_tuples)
        levels = graph.wavefront_levels()
        rng = np.random.default_rng(7)
        return [
            np.arange(T, dtype=np.int64) % ranks,  # round-robin rows
            levels % ranks,  # whole levels per rank (serializes fronts)
            (np.arange(T) >= T // 2).astype(np.int64)
            * (ranks - 1),  # block split: first half rank 0, rest last
            rng.integers(0, ranks, size=T),  # adversarial random
        ]

    @pytest.mark.parametrize("ranks", [2, 3])
    def test_pathological_rank_of_completes(self, bandit2_program, ranks):
        params = {"N": 8}
        graph = tile_graph(bandit2_program, params)
        base = execute(
            bandit2_program, params, mode="wavefront", record_values=True
        )
        for rank_of in self._parity_partitions(graph, ranks):
            res = run_spmd(
                bandit2_program,
                params,
                ranks=ranks,
                rank_of=rank_of,
                record_values=True,
            )
            assert res.mode == "wavefront"
            assert res.objective_value == base.objective_value
            assert res.values == base.values

    def test_single_tile_islands(self, bandit2_program):
        # Every tile on its own "virtual" rank pattern: ranks collapse
        # to 2 but the assignment isolates the initial tile, forcing
        # every edge of the first front across the boundary.
        params = {"N": 7}
        graph = tile_graph(bandit2_program, params)
        T = len(graph.tile_tuples)
        rank_of = np.ones(T, dtype=np.int64)
        rank_of[graph.initial_rows()] = 0
        base = execute(bandit2_program, params, mode="wavefront")
        res = run_spmd(bandit2_program, params, ranks=2, rank_of=rank_of)
        assert res.objective_value == base.objective_value
        assert res.cross_rank_messages > 0


class TestWavefrontLevels:
    """Static level invariants the batch scheduler relies on."""

    def test_levels_topological_and_tight(self, bandit2_program):
        graph = tile_graph(bandit2_program, {"N": 8})
        levels = graph.wavefront_levels()
        assert np.all(levels[graph.initial_rows()] == 0)
        # Every edge strictly increases the level (consumers run in a
        # strictly later front than each producer)...
        counts = np.diff(graph.cons_ptr)
        producers = np.repeat(np.arange(counts.size), counts)
        assert np.all(levels[graph.cons_rows] > levels[producers])
        # ...and levels are *longest-path* tight: some producer sits
        # exactly one front earlier.
        tight = levels[graph.cons_rows] == levels[producers] + 1
        per_consumer = np.zeros(counts.size, dtype=bool)
        np.logical_or.at(per_consumer, graph.cons_rows, tight)
        has_producer = np.diff(graph.prod_ptr) > 0
        assert np.all(per_consumer[has_producer])

    def test_batch_matches_levels(self, bandit2_program):
        graph = tile_graph(bandit2_program, {"N": 6})
        levels = graph.wavefront_levels()
        sched = TileScheduler(graph, batch=True)
        sched.seed()
        seen = []
        while True:
            rows = sched.start_batch(0)
            if not rows:
                break
            lvl = {int(levels[r]) for r in rows}
            assert len(lvl) == 1, "one batch spans one static level"
            seen.append((lvl.pop(), rows))
            for row in rows:
                for consumer, _, _, _ in sched.outgoing(row):
                    sched.deliver_edge(consumer)
                sched.finish_tile(row)
        drained_levels = [lvl for lvl, _ in seen]
        assert drained_levels == sorted(drained_levels)
        assert sum(len(rows) for _, rows in seen) == len(graph.tile_tuples)
        # A full single-rank drain pops exactly the static level sets.
        for lvl, rows in seen:
            assert rows == sorted(np.flatnonzero(levels == lvl).tolist())

    def test_start_tile_rejected_in_batch_mode(self, bandit2_program):
        graph = tile_graph(bandit2_program, {"N": 5})
        sched = TileScheduler(graph, batch=True)
        sched.seed()
        with pytest.raises(RuntimeExecutionError, match="batch mode"):
            sched.start_tile(0)
        plain = TileScheduler(graph)
        plain.seed()
        with pytest.raises(RuntimeExecutionError, match="batch=True"):
            plain.start_batch(0)


class _RawConstraint(Constraint):
    """A constraint that skips integral normalization — stands in for a
    derived validity check carrying rational coefficients."""

    @staticmethod
    def _normalize(expr, kind):
        return expr


class TestAutoDegradation:
    """mode="auto" never raises: construction failures fold into reasons."""

    def _rational_program(self, bandit2_program):
        # Inject a fractional-coefficient check that is always true over
        # the bandit domain (s1/2 + N >= 0), so the numbers must not
        # change — only the engine dispatch.
        validity = bandit2_program.validity
        frac = _RawConstraint(
            LinExpr({"s1": Fraction(1, 2), "N": Fraction(1)}), ">="
        )
        idx = len(validity.checks)
        return dataclasses.replace(
            bandit2_program,
            validity=ValiditySet(
                checks=tuple(validity.checks) + (frac,),
                per_template={
                    name: tuple(ids) + (idx,)
                    for name, ids in validity.per_template.items()
                },
            ),
        )

    def test_rational_check_degrades_to_interpreter(self, bandit2_program):
        program = self._rational_program(bandit2_program)
        ce = compiled_executor(program)
        assert ce.vector_engine is None
        assert "non-integral" in ce.vector_reason
        assert "non-integral" in ce.wavefront_reason
        res = execute(program, {"N": 5}, record_values=True)
        assert res.mode == "interpret"
        # The fraction evaluates exactly in the interpreter closures:
        # same numbers as the unmodified program.
        base = execute(bandit2_program, {"N": 5}, record_values=True)
        assert res.objective_value == base.objective_value
        assert res.values == base.values

    def test_forced_modes_report_reason(self, bandit2_program):
        program = self._rational_program(bandit2_program)
        for mode in ("vector", "wavefront"):
            with pytest.raises(
                RuntimeExecutionError, match="non-integral"
            ):
                execute(program, {"N": 5}, mode=mode)

    def test_auto_never_raises_on_example_specs(self, tmp_path):
        import glob

        from repro.analysis.probe import default_params
        from repro.spec import ensure_kernel, parse_spec_file

        specs = glob.glob("examples/*.spec")
        assert specs, "bundled example specs missing"
        for path in specs:
            spec = parse_spec_file(path)
            kernel = ensure_kernel(spec)
            program = generate(spec)
            res = execute(program, default_params(spec), kernel=kernel)
            assert res.objective_value is not None


class TestRankOfValidation:
    """Explicit rank_of overrides fail fast with a named offending row."""

    def test_shape_validated(self, bandit2_program):
        params = {"N": 6}
        graph = tile_graph(bandit2_program, params)
        T = len(graph.tile_tuples)
        with pytest.raises(RuntimeExecutionError, match="1-D"):
            run_spmd(
                bandit2_program,
                params,
                ranks=2,
                rank_of=np.zeros((T, 2), dtype=np.int64),
            )
        with pytest.raises(
            RuntimeExecutionError, match=f"covers {T - 1} rows"
        ):
            run_spmd(
                bandit2_program,
                params,
                ranks=2,
                rank_of=np.zeros(T - 1, dtype=np.int64),
            )

    def test_dtype_validated(self, bandit2_program):
        params = {"N": 6}
        T = len(tile_graph(bandit2_program, params).tile_tuples)
        with pytest.raises(RuntimeExecutionError, match="integer"):
            run_spmd(
                bandit2_program,
                params,
                ranks=2,
                rank_of=np.zeros(T, dtype=np.float64),
            )

    def test_range_validated_names_row(self, bandit2_program):
        params = {"N": 6}
        graph = tile_graph(bandit2_program, params)
        T = len(graph.tile_tuples)
        bad = np.zeros(T, dtype=np.int64)
        bad[3] = 9
        with pytest.raises(
            RuntimeExecutionError, match=r"rank_of\[3\] = 9 assigns tile "
        ):
            run_spmd(bandit2_program, params, ranks=2, rank_of=bad)


class TestRankAssignmentVectorized:
    """rank_of_rows matches the scalar per-tile load-balancer lookup."""

    @pytest.mark.parametrize("ranks", [2, 3, 5])
    def test_matches_node_of_tile(self, bandit2_program, ranks):
        params = {"N": 9}
        graph = tile_graph(bandit2_program, params)
        assignment = spmd_rank_assignment(
            bandit2_program, params, graph, ranks
        )
        balance = bandit2_program.load_balance(
            params, ranks, slab_work=graph.slab_work()
        )
        spaces = bandit2_program.spaces
        for row, tile in enumerate(graph.tile_tuples):
            assert assignment[row] == balance.node_of_tile(tile, spaces)

    def test_unassigned_slab_diagnosed(self, bandit2_program):
        from repro.runtime import rank_of_rows

        params = {"N": 9}
        graph = tile_graph(bandit2_program, params)
        balance = bandit2_program.load_balance(
            params, 2, slab_work=graph.slab_work()
        )
        missing = next(iter(balance.slab_node))
        balance.slab_node.pop(missing)
        with pytest.raises(
            RuntimeExecutionError, match="unassigned lb slab"
        ):
            rank_of_rows(graph, balance)
