"""Tile dependency graph construction (runtime substrate)."""

import pytest

from repro.errors import RuntimeExecutionError
from repro.runtime import TileGraph


@pytest.fixture(scope="module")
def graph(bandit2_program):
    return TileGraph.build(bandit2_program, {"N": 7})


class TestStructure:
    def test_tiles_match_spaces(self, graph, bandit2_program):
        assert graph.tiles == set(bandit2_program.spaces.tiles({"N": 7}))

    def test_producers_consumers_are_inverse(self, graph):
        for tile in graph.tiles:
            for p in graph.producers[tile]:
                assert tile in graph.consumers[p]
            for c in graph.consumers[tile]:
                assert tile in graph.producers[c]

    def test_acyclic(self, graph):
        graph.validate_acyclic()

    def test_work_totals(self, graph, bandit2_program):
        assert graph.total_work() == bandit2_program.spaces.total_points(
            {"N": 7}
        )
        assert all(w > 0 for w in graph.work.values())

    def test_initial_tiles_have_no_producers(self, graph):
        seeds = graph.initial_tiles()
        assert seeds
        for t in seeds:
            assert not graph.producers[t]

    def test_edge_cells_positive_keys(self, graph):
        for (p, c), cells in graph.edge_cells.items():
            assert p in graph.tiles
            assert c in graph.tiles
            assert cells >= 0

    def test_edge_sizes_match_plans(self, graph, bandit2_program):
        from repro.generator.tile_deps import delta_between

        spaces = bandit2_program.spaces
        for (producer, consumer), cells in list(graph.edge_cells.items())[:40]:
            delta = delta_between(consumer, producer)
            plan = bandit2_program.pack_plans[delta]
            env = {"N": 7}
            env.update(spaces.tile_env(producer))
            assert cells == plan.region_size(env)

    def test_critical_path_bounds(self, graph):
        cp = graph.critical_path_work()
        assert 0 < cp <= graph.total_work()
        # the critical path must be at least the heaviest single tile
        assert cp >= max(graph.work.values())

    def test_dependency_counts(self, graph):
        counts = graph.dependency_counts()
        assert sum(counts.values()) == sum(
            len(p) for p in graph.producers.values()
        )

    def test_validate_schedule_accepts_executor_order(
        self, graph, bandit2_program
    ):
        from repro.runtime import execute

        res = execute(bandit2_program, {"N": 7}, graph=graph)
        graph.validate_schedule(res.tile_order)

    def test_validate_schedule_rejects_violations(self, graph):
        from repro.runtime import execute
        from repro.errors import RuntimeExecutionError

        order = sorted(graph.tiles)  # lexicographic: producers come later
        with pytest.raises(RuntimeExecutionError):
            graph.validate_schedule(order)
        good = list(graph.tiles)
        with pytest.raises(RuntimeExecutionError):
            graph.validate_schedule(good[:-1])  # missing a tile

    def test_validate_schedule_rejects_duplicates(self, graph, bandit2_program):
        from repro.runtime import execute
        from repro.errors import RuntimeExecutionError

        res = execute(bandit2_program, {"N": 7}, graph=graph)
        with pytest.raises(RuntimeExecutionError):
            graph.validate_schedule(res.tile_order + [res.tile_order[0]])


class TestErrors:
    def test_empty_problem_rejected(self, bandit2_program):
        with pytest.raises(RuntimeExecutionError):
            TileGraph.build(bandit2_program, {"N": -1})


class TestScaling:
    def test_graph_grows_with_parameter(self, bandit2_program):
        small = TileGraph.build(bandit2_program, {"N": 4})
        large = TileGraph.build(bandit2_program, {"N": 9})
        assert len(large.tiles) > len(small.tiles)
        assert large.total_work() > small.total_work()

    def test_pending_bound(self, bandit2_program):
        """Paper Section V-B: at most O(n^(d-1)) tiles can be pending."""
        graph = TileGraph.build(bandit2_program, {"N": 9})
        # Simulate a topological execution and track the pending set:
        # tiles with >= 1 satisfied dependency that have not executed.
        import heapq

        prio = bandit2_program.priority("column-major")
        remaining = graph.dependency_counts()
        satisfied = {t: 0 for t in graph.tiles}
        heap = [(prio(t), t) for t in graph.initial_tiles()]
        heapq.heapify(heap)
        pending_peak = 0
        pending = 0
        executed = set()
        partially = set()
        while heap:
            _, tile = heapq.heappop(heap)
            executed.add(tile)
            partially.discard(tile)
            for c in graph.consumers[tile]:
                satisfied[c] += 1
                if satisfied[c] == 1:
                    partially.add(c)
                remaining[c] -= 1
                if remaining[c] == 0:
                    heapq.heappush(heap, (prio(c), c))
            pending_peak = max(pending_peak, len(partially) + len(heap))
        total = len(graph.tiles)
        assert pending_peak < total, "pending set must stay below all tiles"
