"""Unit tests for constraints and constraint systems."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParseError, PolyhedronError
from repro.polyhedra import (
    EQ,
    GE,
    Constraint,
    ConstraintSystem,
    LinExpr,
    box,
    nonneg_orthant,
    parse_constraint,
)


class TestNormalization:
    def test_gcd_division(self):
        c = Constraint(LinExpr({"x": 4, "y": 8}, 12))
        assert c.expr.coeff("x") == 1
        assert c.expr.coeff("y") == 2
        assert c.expr.constant == 3

    def test_integer_tightening_floors_constant(self):
        # 2x - 3 >= 0 -> x >= 3/2 -> x - 2 >= ... floor(-3/2) = -2
        c = Constraint(LinExpr({"x": 2}, -3))
        assert c.expr.coeff("x") == 1
        assert c.expr.constant == -2

    def test_tightening_preserves_integer_points(self):
        raw = LinExpr({"x": 3}, -4)  # 3x >= 4  <=> x >= 2 over integers
        c = Constraint(raw)
        for x in range(-5, 6):
            assert c.satisfied({"x": x}) == (3 * x - 4 >= 0)

    def test_fractional_coefficients_scaled(self):
        c = Constraint(LinExpr({"x": Fraction(1, 2)}, Fraction(1, 4)))
        # 1/2 x + 1/4 >= 0 -> 2x + 1 >= 0 -> tightened to x >= 0 over ints.
        assert c.expr.coeff("x") == 1
        assert c.expr.constant == 0
        for x in range(-4, 5):
            assert c.satisfied({"x": x}) == (Fraction(x, 2) + Fraction(1, 4) >= 0)

    def test_equality_not_tightened(self):
        # 2x - 3 == 0 has no integer solution; must remain detectable.
        c = Constraint(LinExpr({"x": 2}, -3), EQ)
        assert not c.satisfied({"x": 1})
        assert not c.satisfied({"x": 2})

    def test_unknown_kind_rejected(self):
        with pytest.raises(PolyhedronError):
            Constraint(LinExpr.var("x"), "<=")


class TestPredicates:
    def test_trivial(self):
        assert Constraint(LinExpr.const(0)).is_trivial()
        assert Constraint(LinExpr.const(3)).is_trivial()
        assert Constraint(LinExpr.const(0), EQ).is_trivial()

    def test_contradiction(self):
        assert Constraint(LinExpr.const(-1)).is_contradiction()
        assert Constraint(LinExpr.const(2), EQ).is_contradiction()

    def test_nontrivial_neither(self):
        c = Constraint(LinExpr.var("x"))
        assert not c.is_trivial()
        assert not c.is_contradiction()

    def test_satisfied_ge(self):
        c = Constraint(LinExpr({"x": 1}, -2))
        assert c.satisfied({"x": 2})
        assert not c.satisfied({"x": 1})

    def test_satisfied_eq(self):
        c = Constraint(LinExpr({"x": 1}, -2), EQ)
        assert c.satisfied({"x": 2})
        assert not c.satisfied({"x": 3})


class TestShift:
    def test_shifted_constraint(self):
        c = Constraint(LinExpr({"x": -1, "y": -1}, 10))  # x + y <= 10
        shifted = c.shifted({"x": 1})
        assert shifted.satisfied({"x": 9, "y": 0})
        assert not shifted.satisfied({"x": 10, "y": 0})

    def test_shift_matches_pointwise(self):
        c = Constraint(LinExpr({"x": 2, "y": -3}, 5))
        shifted = c.shifted({"x": 2, "y": -1})
        for x in range(-3, 4):
            for y in range(-3, 4):
                assert shifted.satisfied({"x": x, "y": y}) == c.satisfied(
                    {"x": x + 2, "y": y - 1}
                )


class TestParseConstraint:
    def test_le(self):
        (c,) = parse_constraint("x + y <= N")
        assert c.satisfied({"x": 1, "y": 2, "N": 3})
        assert not c.satisfied({"x": 2, "y": 2, "N": 3})

    def test_ge(self):
        (c,) = parse_constraint("x >= 1")
        assert not c.satisfied({"x": 0})

    def test_eq(self):
        (c,) = parse_constraint("x = 2")
        assert c.is_equality()

    def test_strict_tightened(self):
        (c,) = parse_constraint("x < 3")
        assert c.satisfied({"x": 2})
        assert not c.satisfied({"x": 3})
        (c,) = parse_constraint("x > 0")
        assert not c.satisfied({"x": 0})

    def test_chained(self):
        cs = parse_constraint("0 <= x <= N")
        assert len(cs) == 2
        sys_ = ConstraintSystem(cs)
        assert sys_.satisfied({"x": 0, "N": 5})
        assert not sys_.satisfied({"x": -1, "N": 5})
        assert not sys_.satisfied({"x": 6, "N": 5})

    def test_missing_operator(self):
        with pytest.raises(ParseError):
            parse_constraint("x + y")


class TestConstraintSystem:
    def test_deduplication(self):
        c = Constraint(LinExpr.var("x"))
        s = ConstraintSystem([c, c, Constraint(LinExpr({"x": 2}))])
        # 2x >= 0 normalizes to x >= 0, so all three collapse.
        assert len(s) == 1

    def test_trivial_dropped(self):
        s = ConstraintSystem([Constraint(LinExpr.const(1))])
        assert len(s) == 0

    def test_parse_skips_comments_and_blanks(self):
        s = ConstraintSystem.parse(["# header", "", "x >= 0", "x <= 4  # note"])
        assert len(s) == 2

    def test_fix(self):
        s = ConstraintSystem.parse(["x + y <= N"])
        fixed = s.fix({"N": 5})
        assert fixed.satisfied({"x": 2, "y": 3})
        assert not fixed.satisfied({"x": 3, "y": 3})

    def test_and_also(self):
        s = nonneg_orthant(["x"]).and_also(parse_constraint("x <= 3"))
        assert len(s) == 2

    def test_constraints_on(self):
        s = ConstraintSystem.parse(["x >= 0", "y >= 0", "x + y <= 4"])
        assert len(s.constraints_on("x")) == 2

    def test_equalities_split(self):
        s = ConstraintSystem.parse(["x = y", "x >= 0"])
        assert len(s.equalities()) == 1
        assert len(s.inequalities()) == 1

    def test_is_trivially_empty(self):
        s = ConstraintSystem([Constraint(LinExpr.const(-1))])
        assert s.is_trivially_empty()

    def test_eq_and_hash_order_independent(self):
        a = ConstraintSystem.parse(["x >= 0", "y >= 0"])
        b = ConstraintSystem.parse(["y >= 0", "x >= 0"])
        assert a == b
        assert hash(a) == hash(b)

    def test_box_helper(self):
        s = box({"x": (1, 3), "y": (0, 0)})
        assert s.satisfied({"x": 2, "y": 0})
        assert not s.satisfied({"x": 0, "y": 0})
        assert not s.satisfied({"x": 2, "y": 1})


@given(
    st.lists(
        st.tuples(
            st.dictionaries(st.sampled_from(["x", "y"]), st.integers(-5, 5), max_size=2),
            st.integers(-10, 10),
        ),
        max_size=5,
    ),
    st.integers(-6, 6),
    st.integers(-6, 6),
)
def test_system_satisfaction_is_conjunction(raw, x, y):
    constraints = [Constraint(LinExpr(d, c)) for d, c in raw]
    system = ConstraintSystem(constraints)
    env = {"x": x, "y": y}
    assert system.satisfied(env) == all(c.satisfied(env) for c in constraints)


@given(
    st.dictionaries(st.sampled_from(["x", "y"]), st.integers(-8, 8), max_size=2),
    st.integers(-20, 20),
    st.integers(1, 6),
    st.integers(-6, 6),
    st.integers(-6, 6),
)
def test_scaling_never_changes_satisfaction(coeffs, const, scale, x, y):
    """c >= 0 and k*c >= 0 are the same constraint for k > 0."""
    base = Constraint(LinExpr(coeffs, const))
    scaled = Constraint(LinExpr({k: v * scale for k, v in coeffs.items()},
                                const * scale))
    env = {"x": x, "y": y}
    assert base.satisfied(env) == scaled.satisfied(env)


@given(
    st.dictionaries(st.sampled_from(["x", "y"]), st.integers(-5, 5), max_size=2),
    st.integers(-10, 10),
    st.integers(-4, 4),
    st.integers(-4, 4),
    st.integers(-4, 4),
    st.integers(-4, 4),
)
def test_shift_composition(coeffs, const, dx1, dy1, dx2, dy2):
    """Shifting twice equals shifting by the sum of the offsets."""
    c = Constraint(LinExpr(coeffs, const))
    twice = c.shifted({"x": dx1, "y": dy1}).shifted({"x": dx2, "y": dy2})
    once = c.shifted({"x": dx1 + dx2, "y": dy1 + dy2})
    for x in range(-3, 4):
        for y in range(-3, 4):
            env = {"x": x, "y": y}
            assert twice.satisfied(env) == once.satisfied(env)
