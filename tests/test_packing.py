"""Packing/unpacking (Section IV-I): roundtrips and ghost coverage."""

import numpy as np
import pytest

from repro.generator import build_iteration_spaces, build_layout, build_pack_plans
from repro.generator.tile_deps import delta_between, dependency_deltas
from repro.problems import lcs_spec, two_arm_spec


@pytest.fixture(scope="module")
def bandit_setup():
    spec = two_arm_spec(tile_width=3)
    spaces = build_iteration_spaces(spec)
    layout = build_layout(spec)
    plans = build_pack_plans(spec, spaces, layout)
    return spec, spaces, layout, plans


@pytest.fixture(scope="module")
def lcs_setup():
    spec = lcs_spec(["ACGTACG", "GATTACA"], tile_width=3)
    spaces = build_iteration_spaces(spec)
    layout = build_layout(spec)
    plans = build_pack_plans(spec, spaces, layout)
    return spec, spaces, layout, plans


def fill_tile(spaces, layout, tile, params):
    """A producer array whose interior cells hold unique markers."""
    array = np.full(layout.padded_shape, np.nan)
    for env in spaces.local_points(tile, params):
        local = tuple(env[v] for v in spaces.local_vars)
        point = spaces.global_point(tile, local)
        marker = sum(
            point[v] * 1000 ** k
            for k, v in enumerate(spaces.spec.loop_vars)
        )
        array[layout.array_index(local)] = float(marker)
    return array


def marker_of(point, loop_vars):
    return float(sum(point[v] * 1000 ** k for k, v in enumerate(loop_vars)))


@pytest.mark.parametrize("setup_name", ["bandit_setup", "lcs_setup"])
def test_pack_unpack_roundtrip_preserves_values(setup_name, request):
    spec, spaces, layout, plans = request.getfixturevalue(setup_name)
    params = (
        {"N": 7}
        if "N" in spec.params
        else {"L1": 7, "L2": 7}
    )
    tiles = set(spaces.tiles(params))
    checked_edges = 0
    for consumer in tiles:
        consumer_array = np.full(layout.padded_shape, np.nan)
        for delta, plan in plans.items():
            producer = tuple(t + d for t, d in zip(consumer, delta))
            if producer not in tiles:
                continue
            env = dict(params)
            env.update(spaces.tile_env(producer))
            producer_array = fill_tile(spaces, layout, producer, params)
            buf = plan.pack(env, producer_array, layout, spaces.local_vars)
            assert len(buf) == plan.region_size(env)
            assert not np.isnan(buf).any(), "packed an uncomputed cell"
            plan.unpack(env, buf, consumer_array, layout, spaces.local_vars)
            checked_edges += 1
        # every ghost value written matches the producer's global marker
        for idx in np.argwhere(~np.isnan(consumer_array)):
            local = tuple(
                int(i) - lo for i, lo in zip(idx, layout.ghost_lo)
            )
            point = spaces.global_point(consumer, local)
            assert consumer_array[tuple(idx)] == marker_of(
                point, spec.loop_vars
            )
    assert checked_edges > 0


def test_ghost_coverage_bandit(bandit_setup):
    """Every valid cross-tile dependency must be delivered by some edge."""
    spec, spaces, layout, plans = bandit_setup
    params = {"N": 7}
    tiles = set(spaces.tiles(params))
    for consumer in tiles:
        consumer_array = np.full(layout.padded_shape, np.nan)
        for delta, plan in plans.items():
            producer = tuple(t + d for t, d in zip(consumer, delta))
            if producer not in tiles:
                continue
            env = dict(params)
            env.update(spaces.tile_env(producer))
            producer_array = fill_tile(spaces, layout, producer, params)
            buf = plan.pack(env, producer_array, layout, spaces.local_vars)
            plan.unpack(env, buf, consumer_array, layout, spaces.local_vars)
        # now check all needed ghosts are present
        for env in spaces.local_points(consumer, params):
            local = tuple(env[v] for v in spaces.local_vars)
            point = spaces.global_point(consumer, local)
            for name, vec in spec.templates.items():
                target = {
                    v: point[v] + o
                    for v, o in spec.templates.as_offset_map(name).items()
                }
                if not spec.constraints.satisfied({**target, **params}):
                    continue  # invalid access; kernel will not read it
                ghost = tuple(i + r for i, r in zip(local, vec))
                target_tile = spaces.point_to_tile(target)
                if target_tile == consumer:
                    continue  # computed in-tile, not via ghosts
                value = consumer_array[layout.array_index(ghost)]
                assert not np.isnan(value), (
                    f"dependency {name} of {point} missing from ghosts"
                )
                assert value == marker_of(target, spec.loop_vars)


def test_pack_buffer_order_is_deterministic(bandit_setup):
    spec, spaces, layout, plans = bandit_setup
    params = {"N": 7}
    tiles = list(spaces.tiles(params))
    producer = tiles[0]
    env = dict(params)
    env.update(spaces.tile_env(producer))
    array = fill_tile(spaces, layout, producer, params)
    for plan in plans.values():
        a = plan.pack(env, array, layout, spaces.local_vars)
        b = plan.pack(env, array, layout, spaces.local_vars)
        assert np.array_equal(a, b)


def test_unpack_rejects_mismatched_buffer(bandit_setup):
    from repro.errors import GenerationError

    spec, spaces, layout, plans = bandit_setup
    params = {"N": 7}
    producer = next(iter(spaces.tiles(params)))
    env = dict(params)
    env.update(spaces.tile_env(producer))
    plan = next(iter(plans.values()))
    size = plan.region_size(env)
    target = np.full(layout.padded_shape, np.nan)
    with pytest.raises(GenerationError):
        plan.unpack(env, np.zeros(size + 3), target, layout, spaces.local_vars)


def test_region_sizes_smaller_than_tile(bandit_setup):
    """The paper's memory argument: an edge is w^(d-1), a tile w^d."""
    spec, spaces, layout, plans = bandit_setup
    params = {"N": 30}
    interior = (1, 1, 1, 1)
    env = dict(params)
    env.update(spaces.tile_env(interior))
    tile_cells = spaces.tile_point_count(interior, params)
    assert tile_cells == 3 ** 4
    for plan in plans.values():
        assert plan.region_size(env) == 3 ** 3
