"""Public API surface: imports, namespacing, re-exports."""

import importlib
import inspect

import pytest


class TestNamespacing:
    def test_submodules_not_shadowed(self):
        # Regression: re-exporting the simulate() *function* at top level
        # shadowed the repro.simulate submodule and broke
        # `import repro.simulate.calibrate`.
        import repro

        for name in ("polyhedra", "spec", "generator", "runtime",
                     "simulate", "problems"):
            module = importlib.import_module(f"repro.{name}")
            assert inspect.ismodule(getattr(repro, name)), name
            assert getattr(repro, name) is module

    def test_deep_imports_work(self):
        import repro.generator.cgen.program
        import repro.generator.cugen.program
        import repro.generator.pygen.program
        import repro.polyhedra.ehrhart2
        import repro.runtime.recover
        import repro.simulate.calibrate
        import repro.simulate.trace

    def test_all_names_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_names_resolve(self):
        for mod_name in (
            "repro.polyhedra",
            "repro.spec",
            "repro.generator",
            "repro.runtime",
            "repro.simulate",
            "repro.problems",
        ):
            mod = importlib.import_module(mod_name)
            for name in getattr(mod, "__all__", []):
                assert hasattr(mod, name), f"{mod_name}.{name}"

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"


class TestConsoleScripts:
    def test_entry_points_importable(self):
        from repro.cli import main_generate, main_run, main_simulate

        for fn in (main_generate, main_run, main_simulate):
            assert callable(fn)

    def test_entry_points_declared(self):
        import tomllib
        from pathlib import Path

        pyproject = (
            Path(__file__).resolve().parent.parent / "pyproject.toml"
        )
        data = tomllib.loads(pyproject.read_text())
        scripts = data["project"]["scripts"]
        assert scripts["repro-generate"] == "repro.cli:main_generate"
        assert scripts["repro-run"] == "repro.cli:main_run"
        assert scripts["repro-simulate"] == "repro.cli:main_simulate"
