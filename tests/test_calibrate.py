"""Host calibration of the machine model from the compiled generated C."""

import pytest

from repro.errors import SimulationError
from repro.simulate import (
    MachineModel,
    calibrate_machine,
    run_generated_c,
    simulate_program,
)
from repro.simulate.calibrate import gcc_available


pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("calibration")


class TestRunGeneratedC:
    def test_reports_counts(self, bandit2_w4_program, workdir):
        if not gcc_available():
            pytest.skip("gcc not available")
        run = run_generated_c(bandit2_w4_program, {"N": 40}, workdir=workdir)
        assert run.cells == bandit2_w4_program.spaces.total_points({"N": 40})
        assert run.tiles > 0
        assert run.seconds >= 0.0

    def test_check_mode_passes(self, bandit2_w4_program, tmp_path):
        # -DREPRO_CHECK cross-validates the face-scan seeding inside the
        # generated binary itself.
        if not gcc_available():
            pytest.skip("gcc not available")
        run = run_generated_c(
            bandit2_w4_program,
            {"N": 25},
            workdir=tmp_path,
            extra_cflags=["-DREPRO_CHECK"],
        )
        assert run.cells > 0


class TestCalibrateMachine:
    def test_fitted_model_reasonable(self, bandit2_w4_program, workdir):
        if not gcc_available():
            pytest.skip("gcc not available")
        machine, small, large = calibrate_machine(
            bandit2_w4_program, {"N": 30}, {"N": 70}
        )
        # A 2020s x86 core runs this kernel somewhere between 10 M and
        # 10 G cells/s; anything outside that is a fitting bug.
        assert 1e-10 < machine.sec_per_cell < 1e-7
        assert machine.tile_overhead_s >= 0.0
        assert large.cells > small.cells

    def test_calibrated_simulation_predicts_serial_time(
        self, bandit2_w4_program, workdir
    ):
        if not gcc_available():
            pytest.skip("gcc not available")
        machine, _, large = calibrate_machine(
            bandit2_w4_program, {"N": 30}, {"N": 70}
        )
        one_core = machine.with_(nodes=1, cores_per_node=1, queue_lock_s=0.0)
        sim = simulate_program(bandit2_w4_program, large.params, one_core)
        # The calibrated single-core simulation should land within 2x of
        # the real measured run (same cells, fitted constants; pack-cost
        # and cache effects account for the slack).
        assert sim.makespan_s == pytest.approx(large.seconds, rel=1.0)

    def test_requires_gcc(self, bandit2_w4_program, monkeypatch):
        import repro.simulate.calibrate as cal

        monkeypatch.setattr(cal.shutil, "which", lambda _: None)
        with pytest.raises(SimulationError):
            run_generated_c(bandit2_w4_program, {"N": 10})


class TestInProcessCalibration:
    # No gcc needed: these fit the cost model from the Python runtime,
    # exercising the cached CompiledExecutor across repeated runs.

    def test_fitted_model_reasonable(self, bandit2_w4_program):
        from repro.simulate import calibrate_machine_in_process

        machine, small, large = calibrate_machine_in_process(
            bandit2_w4_program, {"N": 12}, {"N": 24}
        )
        assert machine.sec_per_cell > 0.0
        assert machine.tile_overhead_s >= 0.0
        assert large.cells > small.cells
        assert large.cells == bandit2_w4_program.spaces.total_points(
            {"N": 24}
        )

    def test_vector_mode_calibrates_faster_per_cell(self, bandit2_w4_program):
        from repro.simulate import run_in_process

        interp = run_in_process(
            bandit2_w4_program, {"N": 24}, mode="interpret"
        )
        vector = run_in_process(bandit2_w4_program, {"N": 24}, mode="vector")
        assert vector.cells == interp.cells
        assert vector.seconds < interp.seconds

    def test_fit_machine_degenerate_clamps(self):
        from repro.simulate import CalibrationRun, fit_machine

        # Identical runs make the 2x2 system singular: fall back to the
        # per-cell rate of the large run with zero overhead.
        run = CalibrationRun(params={"N": 5}, tiles=4, cells=100, seconds=1.0)
        machine = fit_machine(run, run)
        assert machine.sec_per_cell == pytest.approx(0.01)
        assert machine.tile_overhead_s == 0.0
