"""Discrete-event cluster simulator: conservation laws and sanity."""

import pytest

from repro.errors import SimulationError
from repro.runtime import TileGraph
from repro.simulate import (
    EventQueue,
    MachineModel,
    simulate,
    simulate_program,
)


@pytest.fixture(scope="module")
def graph(bandit2_w4_program):
    return TileGraph.build(bandit2_w4_program, {"N": 15})


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        q.push(2.0, "b")
        q.push(1.0, "a")
        q.push(3.0, "c")
        assert [p for _, p in q.drain()] == ["a", "b", "c"]

    def test_fifo_ties(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert [p for _, p in q.drain()] == ["first", "second"]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "x")

    def test_peek(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, "x")
        assert q.peek_time() == 5.0
        assert len(q) == 1


class TestMachineModel:
    def test_defaults_valid(self):
        m = MachineModel()
        assert m.total_cores == 24

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nodes": 0},
            {"cores_per_node": 0},
            {"send_buffers": 0},
            {"sec_per_cell": -1.0},
            {"bandwidth_bps": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            MachineModel(**kwargs)

    def test_with_(self):
        m = MachineModel().with_(nodes=4)
        assert m.nodes == 4
        assert m.cores_per_node == 24

    def test_costs(self):
        m = MachineModel(sec_per_cell=1e-6, tile_overhead_s=1e-5,
                         pack_sec_per_cell=0.0)
        assert m.tile_duration(100) == pytest.approx(1.1e-4)
        assert m.message_duration(0) == pytest.approx(m.latency_s)


class TestSimulation:
    def test_all_tiles_run(self, graph):
        res = simulate(graph, MachineModel(nodes=1, cores_per_node=4))
        assert sum(res.tiles_per_node) == len(graph.tiles)
        assert sum(res.work_cells_per_node) == graph.total_work()

    def test_busy_conservation(self, graph):
        m = MachineModel(nodes=1, cores_per_node=4)
        res = simulate(graph, m)
        assert sum(res.busy_s_per_node) <= m.total_cores * res.makespan_s + 1e-12
        assert res.serial_time_s == pytest.approx(sum(res.busy_s_per_node))

    def test_single_core_equals_serial_time(self, graph):
        res = simulate(graph, MachineModel(nodes=1, cores_per_node=1))
        assert res.makespan_s == pytest.approx(res.serial_time_s)
        assert res.speedup == pytest.approx(1.0)
        assert res.idle_fraction == pytest.approx(0.0, abs=1e-9)

    def test_more_cores_never_slower(self, graph):
        spans = [
            simulate(
                graph, MachineModel(nodes=1, cores_per_node=c)
            ).makespan_s
            for c in (1, 2, 4, 8)
        ]
        assert spans == sorted(spans, reverse=True)

    def test_speedup_bounded_by_cores(self, graph):
        for c in (2, 4, 8):
            res = simulate(graph, MachineModel(nodes=1, cores_per_node=c))
            assert res.speedup <= c + 1e-9

    def test_deterministic(self, graph):
        m = MachineModel(nodes=2, cores_per_node=4)
        lb = graph.program.load_balance({"N": 15}, 2)
        assign = {
            t: lb.node_of_tile(t, graph.program.spaces) for t in graph.tiles
        }
        a = simulate(graph, m, assignment=assign)
        b = simulate(graph, m, assignment=assign)
        assert a.makespan_s == b.makespan_s
        assert a.messages == b.messages
        assert a.bytes_sent == b.bytes_sent

    def test_multinode_messages_counted(self, graph):
        m = MachineModel(nodes=2, cores_per_node=4)
        lb = graph.program.load_balance({"N": 15}, 2)
        assign = {
            t: lb.node_of_tile(t, graph.program.spaces) for t in graph.tiles
        }
        res = simulate(graph, m, assignment=assign)
        cross = sum(
            1
            for (p, c) in graph.edge_cells
            if assign[p] != assign[c]
        )
        assert res.messages == cross
        expected_bytes = sum(
            cells * m.bytes_per_cell
            for (p, c), cells in graph.edge_cells.items()
            if assign[p] != assign[c]
        )
        assert res.bytes_sent == expected_bytes

    def test_single_node_has_no_messages(self, graph):
        res = simulate(graph, MachineModel(nodes=1, cores_per_node=8))
        assert res.messages == 0
        assert res.bytes_sent == 0

    def test_missing_assignment_rejected(self, graph):
        m = MachineModel(nodes=2, cores_per_node=2)
        with pytest.raises(SimulationError):
            simulate(graph, m, assignment={})

    def test_out_of_range_assignment_rejected(self, graph):
        m = MachineModel(nodes=2, cores_per_node=2)
        assign = {t: 5 for t in graph.tiles}
        with pytest.raises(SimulationError):
            simulate(graph, m, assignment=assign)

    def test_makespan_at_least_critical_path(self, graph):
        m = MachineModel(nodes=1, cores_per_node=64)
        res = simulate(graph, m)
        cp_seconds = graph.critical_path_work() * m.sec_per_cell
        assert res.makespan_s >= cp_seconds

    def test_slower_network_cannot_help(self, graph):
        fast = MachineModel(nodes=2, cores_per_node=4)
        slow = fast.with_(latency_s=1e-3, bandwidth_bps=1e6)
        lb = graph.program.load_balance({"N": 15}, 2)
        assign = {
            t: lb.node_of_tile(t, graph.program.spaces) for t in graph.tiles
        }
        assert (
            simulate(graph, slow, assignment=assign).makespan_s
            >= simulate(graph, fast, assignment=assign).makespan_s
        )

    def test_fewer_send_buffers_cannot_help(self, graph):
        base = MachineModel(nodes=2, cores_per_node=8, bandwidth_bps=5e7)
        lb = graph.program.load_balance({"N": 15}, 2)
        assign = {
            t: lb.node_of_tile(t, graph.program.spaces) for t in graph.tiles
        }
        one = simulate(graph, base.with_(send_buffers=1), assignment=assign)
        many = simulate(graph, base.with_(send_buffers=8), assignment=assign)
        assert one.makespan_s >= many.makespan_s - 1e-12
        assert one.max_send_queue_wait_s >= many.max_send_queue_wait_s


class TestSimulateProgram:
    def test_end_to_end(self, bandit2_w4_program):
        res = simulate_program(
            bandit2_w4_program, {"N": 15}, MachineModel(nodes=2, cores_per_node=4)
        )
        assert res.total_cells == bandit2_w4_program.spaces.total_points(
            {"N": 15}
        )
        assert 0 < res.efficiency <= 1.0

    def test_lb_method_selectable(self, bandit2_w4_program):
        m = MachineModel(nodes=2, cores_per_node=4)
        a = simulate_program(bandit2_w4_program, {"N": 15}, m, lb_method="dimension-cut")
        b = simulate_program(bandit2_w4_program, {"N": 15}, m, lb_method="hyperplane")
        assert a.total_cells == b.total_cells


class TestQueueGroups:
    def test_groups_validated(self):
        with pytest.raises(SimulationError):
            MachineModel(cores_per_node=4, queue_groups=0)
        with pytest.raises(SimulationError):
            MachineModel(cores_per_node=4, queue_groups=8)

    def test_groups_preserve_conservation(self, graph):
        m = MachineModel(nodes=1, cores_per_node=8, queue_groups=4)
        res = simulate(graph, m)
        assert sum(res.tiles_per_node) == len(graph.tiles)
        assert sum(res.busy_s_per_node) <= m.total_cores * res.makespan_s + 1e-12

    def test_groups_never_slower(self, graph):
        base = MachineModel(nodes=1, cores_per_node=8, queue_lock_s=2e-5)
        one = simulate(graph, base.with_(queue_groups=1))
        four = simulate(graph, base.with_(queue_groups=4))
        assert four.makespan_s <= one.makespan_s * 1.01

    def test_groups_equal_cores_removes_lock_serialization(self, graph):
        heavy_lock = MachineModel(
            nodes=1, cores_per_node=8, queue_lock_s=1e-4
        )
        serialized = simulate(graph, heavy_lock.with_(queue_groups=1))
        free = simulate(graph, heavy_lock.with_(queue_groups=8))
        assert free.makespan_s < serialized.makespan_s
