"""Failure injection: the runtime must detect corrupted schedules.

The executor carries internal consistency checks (NaN reads of "valid"
dependencies, dangling edges, deadlocks, cell-count mismatches).  These
tests corrupt the structures deliberately and assert the failures are
loud, not silent.  Corruption happens at the CSR-array level — the
representation the executor and simulator actually consume.
"""

import os
import signal

import numpy as np
import pytest

from repro.analysis import check_trace
from repro.errors import RuntimeExecutionError, SimulationError
from repro.runtime import TileGraph, execute, run_spmd, tile_graph
from repro.simulate import MachineModel, simulate


@pytest.fixture()
def graph(bandit2_program):
    return TileGraph.build(bandit2_program, {"N": 6})


def _edge_list(graph):
    """(producer_row, consumer_row, delta_idx, cells) tuples, cons-CSR order."""
    ptr = graph.cons_ptr.tolist()
    rows = graph.cons_rows.tolist()
    did = graph.cons_delta.tolist()
    cells = graph.cons_cells.tolist()
    out = []
    for p in range(len(ptr) - 1):
        for e in range(ptr[p], ptr[p + 1]):
            out.append((p, rows[e], did[e], cells[e]))
    return out


def _graph_from_edges(graph, edges):
    """Rebuild a TileGraph from an (arbitrarily corrupted) edge list."""
    T = graph.tile_array.shape[0]
    prod_a = np.asarray([e[0] for e in edges], dtype=np.int64)
    cons_a = np.asarray([e[1] for e in edges], dtype=np.int64)
    did_a = np.asarray([e[2] for e in edges], dtype=np.int64)
    cell_a = np.asarray([e[3] for e in edges], dtype=np.int64)
    order = np.lexsort((did_a, cons_a))
    prod_ptr = np.zeros(T + 1, dtype=np.int64)
    np.cumsum(np.bincount(cons_a, minlength=T), out=prod_ptr[1:])
    order2 = np.lexsort((cons_a, prod_a))
    cons_ptr = np.zeros(T + 1, dtype=np.int64)
    np.cumsum(np.bincount(prod_a, minlength=T), out=cons_ptr[1:])
    return TileGraph(
        program=graph.program,
        params=graph.params,
        tile_array=graph.tile_array,
        work_array=graph.work_array,
        prod_ptr=prod_ptr,
        prod_rows=prod_a[order],
        prod_delta=did_a[order],
        cons_ptr=cons_ptr,
        cons_rows=cons_a[order2],
        cons_delta=did_a[order2],
        cons_cells=cell_a[order2],
    )


class TestExecutorDetection:
    def test_missing_producer_edge_detected(self, bandit2_program, graph):
        # Remove one inner tile's producer edge: the consumer starts too
        # early and reads an uncomputed ghost cell.
        prod_counts = np.diff(graph.prod_ptr)
        cons_counts = np.diff(graph.cons_ptr)
        victim = int(
            np.flatnonzero((prod_counts > 0) & (cons_counts > 0))[0]
        )
        edges = _edge_list(graph)
        drop = next(i for i, e in enumerate(edges) if e[1] == victim)
        del edges[drop]
        bad = _graph_from_edges(graph, edges)
        with pytest.raises(RuntimeExecutionError):
            execute(bandit2_program, {"N": 6}, graph=bad)

    def test_cycle_detected(self, graph):
        # Insert a fake 2-cycle between the first two tiles.
        edges = _edge_list(graph)
        edges.append((0, 1, 0, 1))
        edges.append((1, 0, 0, 1))
        bad = _graph_from_edges(graph, edges)
        with pytest.raises(RuntimeExecutionError):
            bad.validate_acyclic()

    def test_kernel_exception_propagates(self, bandit2_program):
        class Boom(Exception):
            pass

        def kernel(point, deps, params):
            if sum(point.values()) == 2:
                raise Boom()
            return 0.0

        with pytest.raises(Boom):
            execute(bandit2_program, {"N": 5}, kernel=kernel)

    def test_nan_producing_kernel_detected(self, bandit2_program):
        # A kernel returning NaN poisons downstream validity checks: the
        # executor flags the first read of a NaN "computed" value.
        def kernel(point, deps, params):
            return float("nan")

        with pytest.raises(RuntimeExecutionError):
            execute(bandit2_program, {"N": 5}, kernel=kernel)


class TestSimulatorDetection:
    def test_cyclic_graph_deadlocks_loudly(self, graph):
        edges = _edge_list(graph)
        edges.append((0, 1, 0, 1))
        edges.append((1, 0, 0, 1))
        bad = _graph_from_edges(graph, edges)
        with pytest.raises(SimulationError):
            simulate(bad, MachineModel(nodes=1, cores_per_node=2))


def _rank1_early_killer(point, deps, params):
    """SIGKILL rank 1's worker mid-protocol, before it packs anything."""
    if os.environ.get("REPRO_SPMD_RANK") == "1":
        os.kill(os.getpid(), signal.SIGKILL)
    vals = [v for v in deps.values() if v is not None]
    return max(vals) + 1 if vals else 0.0


class TestKilledWorkerTrace:
    def test_partial_trace_classifies_truncated_not_racy(
        self, bandit2_program
    ):
        # A worker killed mid-protocol leaves the survivors' recorded
        # events behind on the error.  The sanitizer must classify the
        # merged prefix as truncated-but-race-free (RPR063 warning) —
        # the kill is a crash, not a concurrency bug.
        params = {"N": 12}
        graph = tile_graph(bandit2_program, params)
        rank_of = np.arange(len(graph.tile_tuples), dtype=np.int64) % 2
        with pytest.raises(RuntimeExecutionError, match=r"rank 1 died") as ei:
            run_spmd(
                bandit2_program, params, ranks=2,
                kernel=_rank1_early_killer, mode="interpret",
                rank_of=rank_of, backend="process", record_events=True,
            )
        partial = ei.value.partial_events
        assert set(partial) <= {0, 1}
        dead = sorted({0, 1} - set(partial))
        assert dead == [1]
        events = []
        for r in sorted(partial):
            events.extend(partial[r])
        diags = check_trace(
            graph, rank_of, events, transport="process",
            dead_ranks=dead, expect_complete=False,
        )
        assert {d.code for d in diags} == {"RPR063"}
        assert all(d.severity == "warning" for d in diags)
        assert any("race-free" in d.message for d in diags)
