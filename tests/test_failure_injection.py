"""Failure injection: the runtime must detect corrupted schedules.

The executor carries internal consistency checks (NaN reads of "valid"
dependencies, dangling edges, deadlocks, cell-count mismatches).  These
tests corrupt the structures deliberately and assert the failures are
loud, not silent.
"""

import numpy as np
import pytest

from repro.errors import RuntimeExecutionError, SimulationError
from repro.generator.tile_deps import delta_between
from repro.runtime import TileGraph, execute
from repro.simulate import MachineModel, simulate


@pytest.fixture()
def graph(bandit2_program):
    return TileGraph.build(bandit2_program, {"N": 6})


class TestExecutorDetection:
    def test_missing_producer_edge_detected(self, bandit2_program, graph):
        # Remove one inner tile from a consumer's producer list: the
        # consumer starts too early and reads an uncomputed ghost cell.
        victim = next(
            t for t in graph.tiles if graph.producers[t] and graph.consumers[t]
        )
        producers = dict(graph.producers)
        removed = producers[victim][0]
        producers[victim] = tuple(p for p in producers[victim] if p != removed)
        consumers = {
            t: tuple(c for c in cs if not (t == removed and c == victim))
            for t, cs in graph.consumers.items()
        }
        consumers[removed] = tuple(
            c for c in graph.consumers[removed] if c != victim
        )
        bad = TileGraph(
            program=graph.program,
            params=graph.params,
            tiles=graph.tiles,
            producers=producers,
            consumers=consumers,
            work=graph.work,
            edge_cells=graph.edge_cells,
        )
        with pytest.raises(RuntimeExecutionError):
            execute(bandit2_program, {"N": 6}, graph=bad)

    def test_cycle_detected(self, graph):
        # Insert a fake 2-cycle between two tiles.
        tiles = sorted(graph.tiles)
        a, b = tiles[0], tiles[1]
        producers = dict(graph.producers)
        consumers = dict(graph.consumers)
        producers[a] = tuple(producers[a]) + (b,)
        producers[b] = tuple(producers[b]) + (a,)
        consumers[a] = tuple(consumers[a]) + (b,)
        consumers[b] = tuple(consumers[b]) + (a,)
        bad = TileGraph(
            program=graph.program,
            params=graph.params,
            tiles=graph.tiles,
            producers=producers,
            consumers=consumers,
            work=graph.work,
            edge_cells=graph.edge_cells,
        )
        with pytest.raises(RuntimeExecutionError):
            bad.validate_acyclic()

    def test_kernel_exception_propagates(self, bandit2_program):
        class Boom(Exception):
            pass

        def kernel(point, deps, params):
            if sum(point.values()) == 2:
                raise Boom()
            return 0.0

        with pytest.raises(Boom):
            execute(bandit2_program, {"N": 5}, kernel=kernel)

    def test_nan_producing_kernel_detected(self, bandit2_program):
        # A kernel returning NaN poisons downstream validity checks: the
        # executor flags the first read of a NaN "computed" value.
        def kernel(point, deps, params):
            return float("nan")

        with pytest.raises(RuntimeExecutionError):
            execute(bandit2_program, {"N": 5}, kernel=kernel)


class TestSimulatorDetection:
    def test_cyclic_graph_deadlocks_loudly(self, graph):
        tiles = sorted(graph.tiles)
        a, b = tiles[0], tiles[1]
        producers = dict(graph.producers)
        consumers = dict(graph.consumers)
        producers[a] = tuple(producers[a]) + (b,)
        producers[b] = tuple(producers[b]) + (a,)
        consumers[a] = tuple(consumers[a]) + (b,)
        consumers[b] = tuple(consumers[b]) + (a,)
        edge_cells = dict(graph.edge_cells)
        edge_cells[(b, a)] = 1
        edge_cells[(a, b)] = 1
        bad = TileGraph(
            program=graph.program,
            params=graph.params,
            tiles=graph.tiles,
            producers=producers,
            consumers=consumers,
            work=graph.work,
            edge_cells=edge_cells,
        )
        with pytest.raises(SimulationError):
            simulate(bad, MachineModel(nodes=1, cores_per_node=2))
