"""Exact rational linear algebra tests."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PolyhedronError
from repro.polyhedra import eval_polynomial, fit_polynomial, solve_rational


class TestSolve:
    def test_identity(self):
        assert solve_rational([[1, 0], [0, 1]], [3, 4]) == [3, 4]

    def test_exact_fractions(self):
        x = solve_rational([[2, 1], [1, 3]], [5, 10])
        assert x == [Fraction(1), Fraction(3)]

    def test_requires_square(self):
        with pytest.raises(PolyhedronError):
            solve_rational([[1, 2]], [1])

    def test_singular_rejected(self):
        with pytest.raises(PolyhedronError):
            solve_rational([[1, 1], [2, 2]], [1, 2])

    def test_empty(self):
        assert solve_rational([], []) == []

    def test_pivoting(self):
        # leading zero forces a row swap
        x = solve_rational([[0, 1], [1, 0]], [7, 9])
        assert x == [9, 7]

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(-9, 9), min_size=3, max_size=3),
            min_size=3,
            max_size=3,
        ),
        st.lists(st.integers(-9, 9), min_size=3, max_size=3),
    )
    def test_solution_satisfies_system(self, matrix, rhs):
        try:
            x = solve_rational(matrix, rhs)
        except PolyhedronError:
            return  # singular; nothing to verify
        for row, b in zip(matrix, rhs):
            assert sum(Fraction(a) * v for a, v in zip(row, x)) == b


class TestFitPolynomial:
    def test_linear(self):
        coeffs = fit_polynomial([0, 1], [3, 5])
        assert coeffs == [3, 2]

    def test_binomial(self):
        # C(n+2, 2) = (n^2 + 3n + 2) / 2
        from math import comb

        xs = [0, 1, 2]
        coeffs = fit_polynomial(xs, [comb(x + 2, 2) for x in xs])
        assert coeffs == [1, Fraction(3, 2), Fraction(1, 2)]
        for n in range(10):
            assert eval_polynomial(coeffs, n) == comb(n + 2, 2)

    def test_duplicate_points_rejected(self):
        with pytest.raises(PolyhedronError):
            fit_polynomial([1, 1], [2, 3])

    def test_length_mismatch_rejected(self):
        with pytest.raises(PolyhedronError):
            fit_polynomial([1, 2], [3])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(-20, 20), min_size=1, max_size=5))
    def test_roundtrip_through_samples(self, coeffs):
        xs = list(range(len(coeffs)))
        ys = [eval_polynomial([Fraction(c) for c in coeffs], x) for x in xs]
        fitted = fit_polynomial(xs, ys)
        assert fitted == [Fraction(c) for c in coeffs]


class TestEvalPolynomial:
    def test_horner(self):
        assert eval_polynomial([1, 2, 3], 2) == 1 + 4 + 12

    def test_empty_is_zero(self):
        assert eval_polynomial([], 5) == 0
