"""Compiled counters/scanners must agree exactly with the interpreter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedra import ConstraintSystem, synthesize_loop_nest
from repro.polyhedra.compile import compile_counter, compile_scanner

SIMPLEX = ConstraintSystem.parse(
    ["x >= 0", "y >= 0", "z >= 0", "x + y + z <= N"]
)


@pytest.fixture(scope="module")
def nest():
    return synthesize_loop_nest(SIMPLEX, ["x", "y", "z"])


class TestCounter:
    def test_matches_interpreted(self, nest):
        counter = compile_counter(nest)
        for n in range(-2, 9):
            assert counter({"N": n}) == nest.count({"N": n})

    def test_cached_on_nest(self, nest):
        assert compile_counter(nest) is compile_counter(nest)

    def test_source_attached(self, nest):
        src = compile_counter(nest).source
        assert "def _count" in src
        assert "range(" in src

    def test_strided_bounds(self):
        s = ConstraintSystem.parse(["3*x >= 2", "2*x <= M", "y >= x", "y <= 7"])
        nest = synthesize_loop_nest(s, ["x", "y"])
        counter = compile_counter(nest)
        for m in range(0, 18):
            assert counter({"M": m}) == nest.count({"M": m})

    def test_context_guard(self):
        # After eliminating everything, N >= 0 remains as context.
        s = ConstraintSystem.parse(["x >= 0", "x <= N"])
        nest = synthesize_loop_nest(s, ["x"])
        counter = compile_counter(nest)
        assert counter({"N": -5}) == 0


class TestScanner:
    def test_matches_interpreted_order(self, nest):
        scan = compile_scanner(nest)
        got = list(scan({"N": 4}))
        want = [(p["x"], p["y"], p["z"]) for p in nest.iterate({"N": 4})]
        assert got == want

    def test_descending(self, nest):
        directions = {"x": -1, "y": -1, "z": -1}
        scan = compile_scanner(nest, directions)
        got = list(scan({"N": 3}))
        want = [
            (p["x"], p["y"], p["z"])
            for p in nest.iterate({"N": 3}, directions)
        ]
        assert got == want

    def test_mixed_directions(self, nest):
        directions = {"y": -1}
        scan = compile_scanner(nest, directions)
        got = list(scan({"N": 3}))
        want = [
            (p["x"], p["y"], p["z"])
            for p in nest.iterate({"N": 3}, directions)
        ]
        assert got == want

    def test_direction_cache_is_per_signature(self, nest):
        a = compile_scanner(nest, {"x": -1})
        b = compile_scanner(nest, {"x": 1})
        c = compile_scanner(nest, {"x": -1})
        assert a is c
        assert a is not b

    def test_single_variable_yields_tuples(self):
        s = ConstraintSystem.parse(["x >= 1", "x <= 3"])
        nest = synthesize_loop_nest(s, ["x"])
        scan = compile_scanner(nest)
        assert list(scan({})) == [(1,), (2,), (3,)]


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10), st.integers(1, 4))
def test_counter_property_weighted(n, a):
    s = ConstraintSystem.parse(["x >= 0", "y >= 0", f"{a}*x + y <= N"])
    nest = synthesize_loop_nest(s, ["x", "y"])
    assert compile_counter(nest)({"N": n}) == nest.count({"N": n})
