"""CUDA backend prototype: structural validation (no GPU on this host)."""

import pytest

from repro.errors import GenerationError
from repro.generator import generate
from repro.generator.cugen import emit_cuda_program
from repro.problems import (
    edit_distance_spec,
    msa_spec,
    random_hmm,
    three_arm_spec,
    two_arm_spec,
    viterbi_spec,
)


@pytest.fixture(scope="module")
def bandit_cu(bandit2_w4_program):
    return emit_cuda_program(bandit2_w4_program)


class TestStructure:
    def test_cuda_scaffolding(self, bandit_cu):
        for marker in [
            "#include <cuda_runtime.h>",
            "__global__ void execute_wavefront",
            "__shared__ double V[TILE_CELLS]",
            "__syncthreads();",
            "__constant__ long dev_N",
            "cudaMalloc",
            "cudaMemcpyToSymbol",
            "execute_wavefront<<<",
            "cudaDeviceSynchronize();",
        ]:
            assert marker in bandit_cu, f"missing {marker}"

    def test_generated_ingredients_shared_with_c_backend(self, bandit_cu):
        # Mapping functions, validity checks and center code are the
        # same generated artifacts the CPU backend executes.
        assert "long loc =" in bandit_cu
        assert "long loc_succ1 = loc + (125);" in bandit_cu
        assert "int _chk0 =" in bandit_cu
        assert "(s1 + 1.0) / (s1 + f1 + 2.0)" in bandit_cu

    def test_wavefront_grouping_on_host(self, bandit_cu):
        assert "levels[n] =" in bandit_cu
        assert "for (long level = min_level; level <= max_level; level++)" in bandit_cu

    def test_objective_readback(self, bandit_cu):
        assert "cudaMemcpyDeviceToHost" in bandit_cu
        assert 'printf("objective %.12f\\n", result);' in bandit_cu

    def test_deterministic(self, bandit2_w4_program):
        assert emit_cuda_program(bandit2_w4_program) == emit_cuda_program(
            bandit2_w4_program
        )


class TestOtherProblems:
    def test_bandit3(self, bandit3_program):
        src = emit_cuda_program(bandit3_program)
        assert "__global__" in src
        assert src.count("__syncthreads();") >= 2

    def test_negative_templates(self, edit_program):
        src = emit_cuda_program(edit_program)
        assert "SEQ_A" in src
        assert "loc_diag" in src

    def test_msa3(self, msa3_program):
        src = emit_cuda_program(msa3_program)
        assert "loc_adv_123" in src


class TestScheduleGuards:
    def test_viterbi_rejected_with_reason(self):
        # Viterbi's (-1, +k) templates sit inside a local wavefront of
        # the default direction vector; the backend must refuse loudly
        # rather than emit a racy kernel.
        hmm = random_hmm(3, 4, 10, seed=1)
        program = generate(viterbi_spec(*hmm, tile_width_t=4))
        with pytest.raises(GenerationError):
            emit_cuda_program(program)

    def test_missing_center_code_rejected(self, lcs3_program):
        import dataclasses

        spec = dataclasses.replace(lcs3_program.spec, center_code_c="")
        with pytest.raises(GenerationError):
            emit_cuda_program(generate(spec))
