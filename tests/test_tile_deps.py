"""Tile-dependency derivation (Section IV-F) against brute force."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generator import (
    consumers_of,
    delta_between,
    dependency_deltas,
    producers_of,
    template_delta_box,
    tile_dependency_map,
)
from repro.problems import two_arm_spec
from repro.spec import ProblemSpec


def brute_delta_box(vector, widths):
    """All offsets floor((i + r)/w) - 0 over every in-tile local i."""
    out = set()
    for local in itertools.product(*(range(w) for w in widths)):
        delta = tuple(
            (i + r) // w - 0 for i, r, w in zip(local, vector, widths)
        )
        out.add(delta)
    return out


class TestDeltaBox:
    @pytest.mark.parametrize(
        "vector, widths",
        [
            ((1, 0), (4, 4)),
            ((1, 1), (4, 4)),
            ((-1, 0), (4, 4)),
            ((-1, 2), (3, 2)),
            ((2, -3), (5, 3)),
            ((4, 4), (4, 4)),
        ],
    )
    def test_matches_brute_force(self, vector, widths):
        assert set(template_delta_box(vector, widths)) == brute_delta_box(
            vector, widths
        )

    def test_paper_example(self):
        # Template <1,1> -> dependencies on t+<1,0>, t+<1,1>, t+<0,1>
        # (plus the in-tile <0,0>).
        box = set(template_delta_box((1, 1), (4, 4)))
        assert box == {(0, 0), (1, 0), (0, 1), (1, 1)}

    @settings(max_examples=60, deadline=None)
    @given(
        st.tuples(st.integers(-4, 4), st.integers(-4, 4)),
        st.tuples(st.integers(1, 5), st.integers(1, 5)),
    )
    def test_property(self, vector, widths):
        assert set(template_delta_box(vector, widths)) == brute_delta_box(
            vector, widths
        )


class TestDependencyMap:
    def test_bandit_unit_deltas(self):
        spec = two_arm_spec(tile_width=4)
        dep_map = tile_dependency_map(spec)
        expected = {
            (1, 0, 0, 0): ("succ1",),
            (0, 1, 0, 0): ("fail1",),
            (0, 0, 1, 0): ("succ2",),
            (0, 0, 0, 1): ("fail2",),
        }
        assert dep_map == expected

    def test_zero_delta_excluded(self):
        spec = two_arm_spec(tile_width=4)
        assert (0, 0, 0, 0) not in tile_dependency_map(spec)

    def test_diagonal_template_multiple_deltas(self):
        spec = ProblemSpec.create(
            name="diag",
            loop_vars=["x", "y"],
            params=["N"],
            constraints=["x >= 0", "y >= 0", "x + y <= N"],
            templates={"d": [1, 1]},
            tile_widths=4,
        )
        dep_map = tile_dependency_map(spec)
        assert set(dep_map) == {(1, 0), (0, 1), (1, 1)}
        assert all(names == ("d",) for names in dep_map.values())

    def test_shared_delta_lists_all_templates(self):
        spec = ProblemSpec.create(
            name="share",
            loop_vars=["x", "y"],
            params=["N"],
            constraints=["x >= 0", "y >= 0", "x + y <= N"],
            templates={"a": [1, 0], "b": [2, 0]},
            tile_widths=4,
        )
        dep_map = tile_dependency_map(spec)
        assert dep_map[(1, 0)] == ("a", "b")

    def test_deterministic_order(self):
        spec = two_arm_spec(tile_width=4)
        assert dependency_deltas(spec) == dependency_deltas(spec)
        assert list(dependency_deltas(spec)) == sorted(dependency_deltas(spec))


class TestNeighborHelpers:
    def test_producers_consumers_inverse(self):
        deltas = [(1, 0), (0, 1), (1, 1)]
        tile = (3, 5)
        for p in producers_of(tile, deltas):
            assert tile in consumers_of(p, deltas)

    def test_delta_between(self):
        assert delta_between((2, 3), (3, 3)) == (1, 0)
        assert delta_between((2, 3), (2, 2)) == (0, -1)
