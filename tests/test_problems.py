"""The problem library: reference solvers and spec structure."""

import math

import pytest

from repro.problems import (
    REGISTRY,
    delayed_two_arm_reference,
    delayed_two_arm_spec,
    edit_distance_reference,
    edit_distance_spec,
    karm_spec,
    lcs_reference,
    lcs_spec,
    msa_reference,
    msa_spec,
    random_sequence,
    three_arm_reference,
    three_arm_spec,
    two_arm_reference,
    two_arm_spec,
)


class TestBanditReferences:
    def test_n0_is_zero(self):
        assert two_arm_reference(0) == 0.0
        assert three_arm_reference(0) == 0.0
        assert delayed_two_arm_reference(0) == 0.0

    def test_n1_single_pull(self):
        # One pull of a fresh arm succeeds with probability 1/2.
        assert two_arm_reference(1) == pytest.approx(0.5)
        assert three_arm_reference(1) == pytest.approx(0.5)

    def test_n2_known_value(self):
        # Hand-computable: first pull 1/2; optimal continuation:
        # success -> p=2/3 on same arm; failure -> switch, fresh arm 1/2.
        expected = 0.5 + 0.5 * (2 / 3) + 0.5 * 0.5
        assert two_arm_reference(2) == pytest.approx(expected)

    def test_monotone_in_n(self):
        values = [two_arm_reference(n) for n in range(8)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_bounded_by_n(self):
        for n in range(6):
            assert 0 <= two_arm_reference(n) <= n

    def test_three_arms_at_least_two(self):
        # More arms can only help the optimal policy.
        for n in range(6):
            assert three_arm_reference(n) >= two_arm_reference(n) - 1e-12

    def test_delay_costs_value(self):
        for n in range(2, 8):
            assert delayed_two_arm_reference(n) < two_arm_reference(n)

    def test_delayed_monotone(self):
        values = [delayed_two_arm_reference(n) for n in range(8)]
        assert all(b >= a for a, b in zip(values, values[1:]))


class TestBanditSpecs:
    def test_two_arm_is_4d(self):
        spec = two_arm_spec()
        assert spec.dims == 4
        assert len(spec.templates) == 4

    def test_three_arm_is_6d(self):
        spec = three_arm_spec()
        assert spec.dims == 6
        assert len(spec.templates) == 6

    def test_delayed_is_6d_with_coupling(self):
        spec = delayed_two_arm_spec()
        assert spec.dims == 6
        # The coupled constraint s1 + f1 <= q1 must be present.
        assert any(
            c.coeff("q1") != 0 and c.coeff("s1") != 0 for c in spec.constraints
        )

    def test_karm_general(self):
        spec = karm_spec(4, tile_width=2)
        assert spec.dims == 8

    def test_center_code_both_backends(self):
        for spec in (two_arm_spec(), three_arm_spec(), delayed_two_arm_spec()):
            assert spec.center_code_c.strip()
            assert spec.center_code_py.strip()


class TestEditDistance:
    def test_identical_strings(self):
        assert edit_distance_reference("ACGT", "ACGT") == 0

    def test_empty_vs_string(self):
        assert edit_distance_reference("", "ACG") == 3
        assert edit_distance_reference("ACG", "") == 3

    def test_known_case(self):
        assert edit_distance_reference("kitten", "sitting") == 3

    def test_symmetry(self):
        a, b = random_sequence(9, 1), random_sequence(7, 2)
        assert edit_distance_reference(a, b) == edit_distance_reference(b, a)

    def test_triangle_inequality(self):
        a = random_sequence(8, 3)
        b = random_sequence(8, 4)
        c = random_sequence(8, 5)
        assert edit_distance_reference(a, c) <= edit_distance_reference(
            a, b
        ) + edit_distance_reference(b, c)

    def test_spec_objective(self):
        spec = edit_distance_spec("ACG", "TT", tile_width=2)
        assert spec.objective_point == {"i": 3, "j": 2}


class TestLcs:
    def test_known_pair(self):
        assert lcs_reference(["ABCBDAB", "BDCABA"]) == 4

    def test_three_strings(self):
        # "BC" is not a subsequence of "CB", so the best common
        # subsequence of all three is a single character.
        assert lcs_reference(["ABC", "BC", "CB"]) == 1
        assert lcs_reference(["AB", "AB", "AB"]) == 2

    def test_bounded_by_shortest(self):
        strs = [random_sequence(6, 7), random_sequence(9, 8)]
        assert lcs_reference(strs) <= 6

    def test_identical(self):
        assert lcs_reference(["ACGT", "ACGT", "ACGT"]) == 4

    def test_spec_arity_checked(self):
        with pytest.raises(ValueError):
            lcs_spec(["A"])
        with pytest.raises(ValueError):
            lcs_spec(["A", "B", "C", "D"])


class TestMsa:
    def test_identical_sequences_cost_zero(self):
        assert msa_reference(["ACGT", "ACGT"]) == 0.0
        assert msa_reference(["ACG", "ACG", "ACG"]) == 0.0

    def test_pairwise_equals_edit_like(self):
        # With mismatch=1 and gap=1, 2-sequence sum-of-pairs MSA is the
        # Levenshtein distance.
        a, b = random_sequence(8, 9), random_sequence(6, 10)
        assert msa_reference([a, b], mismatch=1.0, gap=1.0) == float(
            edit_distance_reference(a, b)
        )

    def test_all_gaps_cost(self):
        # Aligning against an empty sequence forces pure gap columns.
        assert msa_reference(["AC", ""], gap=2.0) == 4.0

    def test_joint_at_least_pairwise(self):
        strs = [random_sequence(6, 11), random_sequence(5, 12), random_sequence(7, 13)]
        joint = msa_reference(strs)
        pair_sum = (
            msa_reference([strs[0], strs[1]])
            + msa_reference([strs[0], strs[2]])
            + msa_reference([strs[1], strs[2]])
        )
        assert joint >= pair_sum - 1e-9

    def test_spec_arity_checked(self):
        with pytest.raises(ValueError):
            msa_spec(["A"])


class TestRegistry:
    def test_expected_problems(self):
        assert set(REGISTRY) == {
            "bandit2",
            "bandit3",
            "bandit2-delayed",
            "edit-distance",
            "damerau",
            "smith-waterman",
            "lcs",
            "msa",
            "viterbi",
        }

    def test_random_sequence_deterministic(self):
        assert random_sequence(20, 5) == random_sequence(20, 5)
        assert random_sequence(20, 5) != random_sequence(20, 6)
        assert set(random_sequence(50, 1)) <= set("ACGT")
