"""Damerau-Levenshtein (reach-2 templates) and Smith-Waterman variants."""

import pytest

from repro.errors import SpecError
from repro.generator import generate
from repro.problems import (
    damerau_reference,
    damerau_spec,
    edit_distance_reference,
    random_sequence,
    smith_waterman_best,
    smith_waterman_reference,
    smith_waterman_spec,
)
from repro.runtime import execute
from repro.spec import kernel_from_center_code


class TestDamerauReference:
    def test_transposition_is_one(self):
        assert damerau_reference("AB", "BA") == 1
        assert edit_distance_reference("AB", "BA") == 2

    def test_classic_case(self):
        assert damerau_reference("CA", "ABC") == 3  # restricted OSA

    def test_never_exceeds_levenshtein(self):
        for seed in range(5):
            a = random_sequence(9, seed)
            b = random_sequence(8, seed + 50)
            assert damerau_reference(a, b) <= edit_distance_reference(a, b)

    def test_identical(self):
        assert damerau_reference("ACGT", "ACGT") == 0


class TestDamerauSpec:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_reference(self, seed):
        a = random_sequence(11, seed)
        b = random_sequence(9, seed + 100)
        program = generate(damerau_spec(a, b, tile_width=3))
        res = execute(program, {"LA": len(a), "LB": len(b)})
        assert res.objective_value == damerau_reference(a, b)

    def test_transposition_instance(self):
        # Force a case where the swap template matters.
        a, b = "ACGT", "CAGT"
        program = generate(damerau_spec(a, b, tile_width=2))
        res = execute(program, {"LA": 4, "LB": 4})
        assert res.objective_value == 1.0

    def test_reach2_ghost_margins(self):
        program = generate(damerau_spec("ACGTAC", "GATTAC", tile_width=4))
        assert program.layout.ghost_lo == (2, 2)
        assert program.layout.ghost_hi == (0, 0)

    def test_width_below_reach_rejected(self):
        with pytest.raises(SpecError):
            damerau_spec("ACGT", "GATT", tile_width=1)

    def test_synthesized_kernel_agrees(self):
        a, b = random_sequence(8, 5), random_sequence(7, 6)
        spec = damerau_spec(a, b, tile_width=3)
        program = generate(spec)
        synthesized = kernel_from_center_code(spec)
        res = execute(program, {"LA": len(a), "LB": len(b)}, kernel=synthesized)
        assert res.objective_value == damerau_reference(a, b)


class TestSmithWaterman:
    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_best_score_matches_reference(self, seed):
        a = random_sequence(14, seed)
        b = random_sequence(12, seed + 30)
        program = generate(smith_waterman_spec(a, b, tile_width=4))
        best = smith_waterman_best(program, {"LA": len(a), "LB": len(b)})
        assert best == pytest.approx(
            smith_waterman_reference(a, b), abs=1e-9
        )

    def test_perfect_substring(self):
        a = "TTTTACGTACGTTTT"
        b = "ACGTACG"
        program = generate(smith_waterman_spec(a, b, tile_width=4))
        best = smith_waterman_best(program, {"LA": len(a), "LB": len(b)})
        # 7 matching characters at +2 each.
        assert best == 14.0

    def test_disjoint_alphabets_score_zero(self):
        program = generate(
            smith_waterman_spec("AAAA", "TTTT", tile_width=2, match=2.0)
        )
        best = smith_waterman_best(program, {"LA": 4, "LB": 4})
        assert best == 0.0

    def test_scores_nonnegative_everywhere(self):
        a, b = random_sequence(9, 9), random_sequence(9, 10)
        program = generate(smith_waterman_spec(a, b, tile_width=3))
        res = execute(
            program, {"LA": 9, "LB": 9}, record_values=True
        )
        assert all(v >= 0.0 for v in res.values.values())

    def test_local_beats_global_prefix_scores(self):
        # The local optimum is at least the score of any single cell.
        a, b = random_sequence(10, 11), random_sequence(10, 12)
        program = generate(smith_waterman_spec(a, b, tile_width=4))
        res = execute(program, {"LA": 10, "LB": 10}, record_values=True)
        best = max(res.values.values())
        assert best >= res.values[(10, 10)]
