"""Lattice enumeration/counting wrappers and the bounding-box helper."""

import pytest

from repro.errors import PolyhedronError
from repro.polyhedra import (
    ConstraintSystem,
    bounding_box,
    count_box_filtered,
    count_points,
    enumerate_box_filtered,
    enumerate_points,
    simplex_count,
)

SIMPLEX4 = ConstraintSystem.parse(
    ["a >= 0", "b >= 0", "c >= 0", "d >= 0", "a + b + c + d <= N"]
)
ORDER4 = ["a", "b", "c", "d"]


class TestCounting:
    @pytest.mark.parametrize("n", [0, 1, 2, 5, 9])
    def test_simplex_closed_form(self, n):
        assert count_points(SIMPLEX4, ORDER4, {"N": n}) == simplex_count(4, n)

    def test_empty(self):
        assert count_points(SIMPLEX4, ORDER4, {"N": -3}) == 0

    def test_count_matches_enumerate(self):
        pts = list(enumerate_points(SIMPLEX4, ORDER4, {"N": 4}))
        assert len(pts) == count_points(SIMPLEX4, ORDER4, {"N": 4})

    def test_box_oracle_agrees(self):
        box = {v: (0, 5) for v in ORDER4}
        assert count_points(SIMPLEX4, ORDER4, {"N": 5}) == count_box_filtered(
            SIMPLEX4, ORDER4, box, {"N": 5}
        )

    def test_simplex_count_negative(self):
        assert simplex_count(3, -1) == 0


class TestEnumerate:
    def test_points_include_parameters(self):
        pts = list(enumerate_points(SIMPLEX4, ORDER4, {"N": 1}))
        assert all(p["N"] == 1 for p in pts)
        assert len(pts) == 5

    def test_oracle_requires_full_box(self):
        with pytest.raises(PolyhedronError):
            list(enumerate_box_filtered(SIMPLEX4, ORDER4, {"a": (0, 1)}, {"N": 1}))


class TestBoundingBox:
    def test_simplex_box(self):
        bb = bounding_box(SIMPLEX4, ORDER4, {"N": 6})
        assert bb == {v: (0, 6) for v in ORDER4}

    def test_shifted_box(self):
        s = ConstraintSystem.parse(["x >= 2", "x + y <= 7", "y >= 3"])
        bb = bounding_box(s, ["x", "y"], {})
        assert bb["x"] == (2, 4)
        assert bb["y"] == (3, 5)
