"""Exception hierarchy: everything public derives from ReproError."""

import pytest

from repro.errors import (
    EmptyPolyhedronError,
    GenerationError,
    ParseError,
    PolyhedronError,
    ReproError,
    RuntimeExecutionError,
    SimulationError,
    SpecError,
)


@pytest.mark.parametrize(
    "exc",
    [
        SpecError,
        ParseError,
        PolyhedronError,
        EmptyPolyhedronError,
        GenerationError,
        RuntimeExecutionError,
        SimulationError,
    ],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_parse_error_is_spec_error():
    assert issubclass(ParseError, SpecError)


def test_empty_polyhedron_is_polyhedron_error():
    assert issubclass(EmptyPolyhedronError, PolyhedronError)


def test_catching_base_catches_subsystem_errors():
    with pytest.raises(ReproError):
        raise GenerationError("x")


def test_top_level_reexports():
    import repro

    assert repro.ReproError is ReproError
    assert repro.SpecError is SpecError
