"""Exception hierarchy: everything public derives from ReproError."""

import pytest

from repro.errors import (
    AnalysisError,
    EmptyPolyhedronError,
    GenerationError,
    ParseError,
    PolyhedronError,
    ReproError,
    RuntimeExecutionError,
    SimulationError,
    SpecError,
)


@pytest.mark.parametrize(
    "exc",
    [
        SpecError,
        ParseError,
        PolyhedronError,
        EmptyPolyhedronError,
        GenerationError,
        RuntimeExecutionError,
        SimulationError,
        AnalysisError,
    ],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_parse_error_is_spec_error():
    assert issubclass(ParseError, SpecError)


def test_empty_polyhedron_is_polyhedron_error():
    assert issubclass(EmptyPolyhedronError, PolyhedronError)


def test_catching_base_catches_subsystem_errors():
    with pytest.raises(ReproError):
        raise GenerationError("x")


def test_top_level_reexports():
    import repro

    assert repro.ReproError is ReproError
    assert repro.SpecError is SpecError


class TestAnalysisContract:
    def test_analysis_misuse_caught_by_base_class(self):
        # The one-base-class catch contract covers the analyzer too.
        from repro.analysis import make_diagnostic

        with pytest.raises(ReproError):
            make_diagnostic("RPR999", "no such rule")
        with pytest.raises(AnalysisError):
            make_diagnostic("RPR999", "no such rule")

    def test_diagnostic_is_a_value_not_an_exception(self):
        # Findings are reported, never raised: Diagnostic is a frozen
        # dataclass exported from repro.analysis, not an error type.
        from repro.analysis import Diagnostic

        assert not issubclass(Diagnostic, BaseException)
        d = Diagnostic(code="RPR021", severity="error", message="m")
        assert d.is_error()
        with pytest.raises(Exception):
            d.code = "RPR022"  # frozen
