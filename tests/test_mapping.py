"""Mapping functions and tile memory layout (Section IV-H)."""

import itertools

import pytest

from repro.generator import build_layout, template_offsets
from repro.generator.mapping import TileLayout
from repro.problems import lcs_spec, two_arm_spec


class TestLayoutGeometry:
    def test_bandit_layout(self):
        layout = build_layout(two_arm_spec(tile_width=4))
        assert layout.widths == (4, 4, 4, 4)
        assert layout.ghost_lo == (0, 0, 0, 0)
        assert layout.ghost_hi == (1, 1, 1, 1)
        assert layout.padded_shape == (5, 5, 5, 5)
        assert layout.cells == 625
        assert layout.strides == (125, 25, 5, 1)

    def test_negative_template_layout(self):
        layout = build_layout(lcs_spec(["ACGT", "GATTA"], tile_width=4))
        assert layout.ghost_lo == (1, 1)
        assert layout.ghost_hi == (0, 0)
        assert layout.padded_shape == (5, 5)

    def test_base_offset(self):
        layout = TileLayout(("x", "y"), (3, 3), (1, 2), (0, 0))
        # origin sits at (1, 2) in the padded array
        assert layout.base_offset() == 1 * layout.strides[0] + 2

    def test_array_index_interior(self):
        layout = TileLayout(("x", "y"), (3, 3), (1, 1), (1, 1))
        assert layout.array_index((0, 0)) == (1, 1)
        assert layout.array_index((2, 2)) == (3, 3)

    def test_array_index_ghosts(self):
        layout = TileLayout(("x", "y"), (3, 3), (1, 1), (1, 1))
        assert layout.array_index((-1, 3)) == (0, 4)

    def test_array_index_out_of_margin(self):
        layout = TileLayout(("x", "y"), (3, 3), (1, 1), (1, 1))
        with pytest.raises(IndexError):
            layout.array_index((-2, 0))
        with pytest.raises(IndexError):
            layout.array_index((0, 4))


class TestLinearIndex:
    def test_bijective_over_padded_box(self):
        layout = TileLayout(("x", "y", "z"), (3, 2, 4), (1, 0, 2), (1, 1, 0))
        seen = set()
        ranges = [
            range(-lo, w + hi)
            for lo, w, hi in zip(layout.ghost_lo, layout.widths, layout.ghost_hi)
        ]
        for local in itertools.product(*ranges):
            idx = layout.linear_index(local)
            assert 0 <= idx < layout.cells
            assert idx not in seen
            seen.add(idx)
        assert len(seen) == layout.cells

    def test_template_offset_is_constant_shift(self):
        layout = TileLayout(("x", "y"), (4, 4), (1, 1), (1, 1))
        for vec in [(1, 0), (0, 1), (1, 1), (-1, 0), (-1, -1)]:
            off = layout.template_offset(vec)
            for local in itertools.product(range(4), repeat=2):
                shifted = tuple(i + r for i, r in zip(local, vec))
                assert layout.linear_index(shifted) == layout.linear_index(
                    local
                ) + off


class TestTemplateOffsets:
    def test_bandit_offsets(self):
        spec = two_arm_spec(tile_width=4)
        layout = build_layout(spec)
        offsets = template_offsets(spec, layout)
        assert offsets == {
            "succ1": 125,
            "fail1": 25,
            "succ2": 5,
            "fail2": 1,
        }

    def test_negative_offsets(self):
        spec = lcs_spec(["AC", "GT"], tile_width=3)
        layout = build_layout(spec)
        offsets = template_offsets(spec, layout)
        assert offsets["drop_1"] == -layout.strides[0]
        assert offsets["drop_2"] == -1
        assert offsets["drop_12"] == -layout.strides[0] - 1
