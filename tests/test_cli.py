"""Command-line interface tests."""

import json

import pytest

from repro.cli import (
    main_generate,
    main_lint,
    main_racecheck,
    main_run,
    main_simulate,
)

SPEC = """\
problem: staircase
loop_vars: x y
params: M
tile_widths: 3

constraints:
    x >= 0
    y >= 0
    x + y <= M

templates:
    right = 1 0
    up = 0 1

center_code_c: |
    V[loc] = 1.0;

center_code_py: |
    V[loc] = 1.0
"""


@pytest.fixture()
def spec_file(tmp_path):
    path = tmp_path / "prob.spec"
    path.write_text(SPEC)
    return path


class TestGenerate:
    def test_c_output(self, spec_file, tmp_path, capsys):
        out = tmp_path / "prog.c"
        rc = main_generate([str(spec_file), "-o", str(out)])
        assert rc == 0
        text = out.read_text()
        assert "#pragma omp parallel" in text
        assert "staircase" in text
        assert "wrote" in capsys.readouterr().out

    def test_py_output(self, spec_file, tmp_path):
        out = tmp_path / "prog.py"
        rc = main_generate([str(spec_file), "-o", str(out), "--target", "py"])
        assert rc == 0
        compile(out.read_text(), "prog.py", "exec")

    def test_stdout_default(self, spec_file, capsys):
        rc = main_generate([str(spec_file)])
        assert rc == 0
        assert "int main(" in capsys.readouterr().out

    def test_describe_flag(self, spec_file, capsys):
        rc = main_generate([str(spec_file), "--describe"])
        assert rc == 0
        assert "tile dependencies" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.spec"
        bad.write_text("problem: x\n")
        rc = main_generate([str(bad)])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_lp_prune_option(self, spec_file, capsys):
        rc = main_generate([str(spec_file), "--prune", "lp"])
        assert rc == 0


class TestRun:
    def test_bandit(self, capsys):
        rc = main_run(["--problem", "bandit2", "--tile-width", "3", "N=6"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "objective" in out
        assert "tiles executed" in out

    def test_alignment_defaults(self, capsys):
        rc = main_run(["--problem", "edit-distance", "--tile-width", "5"])
        assert rc == 0
        assert "objective" in capsys.readouterr().out

    def test_spmd_ranks(self, capsys):
        rc = main_run(
            ["--problem", "bandit2", "--tile-width", "3", "--ranks", "2",
             "N=10"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "tiles per rank" in out
        assert "cross-rank msgs" in out
        assert "bit-identical" in out

    def test_spec_file_with_ranks(self, spec_file, capsys):
        rc = main_run(["--spec", str(spec_file), "--ranks", "2", "M=9"])
        assert rc == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_bad_rank_count_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main_run(["--problem", "bandit2", "--ranks", "0", "N=6"])
        assert exc.value.code == 2

    def test_unknown_problem(self):
        with pytest.raises(SystemExit):
            main_run(["--problem", "nope"])

    def test_bad_param_format(self):
        with pytest.raises(SystemExit):
            main_run(["--problem", "bandit2", "N:6"])

    def test_non_integer_param(self):
        with pytest.raises(SystemExit):
            main_run(["--problem", "bandit2", "N=six"])


class TestSimulate:
    def test_single_run(self, capsys):
        rc = main_simulate(
            ["--problem", "bandit2", "--tile-width", "5", "--nodes", "2",
             "--cores", "4", "N=20"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "efficiency" in out
        assert "messages" in out

    def test_core_sweep(self, capsys):
        rc = main_simulate(
            ["--problem", "bandit2", "--tile-width", "5", "--sweep-cores",
             "N=16"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_hyperplane_lb(self, capsys):
        rc = main_simulate(
            ["--problem", "bandit2", "--tile-width", "5", "--nodes", "2",
             "--cores", "4", "--lb", "hyperplane", "N=20"]
        )
        assert rc == 0
        assert "hyperplane" in capsys.readouterr().out

    def test_timeline(self, capsys):
        rc = main_simulate(
            ["--problem", "bandit2", "--tile-width", "5", "--nodes", "2",
             "--cores", "4", "--timeline", "N=20"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "node  0 |" in out
        assert "node  1 |" in out


#: A spec with a seeded defect on every tier the linter reports as an
#: error: the unguarded V[loc_right] read is RPR025.
BAD_SPEC = SPEC.replace(
    "center_code_py: |\n    V[loc] = 1.0\n",
    "center_code_py: |\n    V[loc] = V[loc_right]\n",
)


@pytest.fixture()
def bad_spec_file(tmp_path):
    path = tmp_path / "bad.spec"
    path.write_text(BAD_SPEC)
    return path


class TestLint:
    def test_clean_problem_exits_zero(self, capsys):
        rc = main_lint(["--problem", "bandit2", "--tile-width", "3"])
        assert rc == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_clean_spec_file(self, spec_file, capsys):
        rc = main_lint(["--spec", str(spec_file)])
        assert rc == 0
        out = capsys.readouterr().out
        # V[loc] = 1.0 never reads its templates: warnings, not errors.
        assert "RPR023" in out

    def test_defective_spec_exits_one(self, bad_spec_file, capsys):
        rc = main_lint(["--spec", str(bad_spec_file)])
        assert rc == 1
        assert "RPR025" in capsys.readouterr().out

    def test_json_format(self, bad_spec_file, capsys):
        rc = main_lint(["--spec", str(bad_spec_file), "--format", "json"])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is False
        assert any(d["code"] == "RPR025" for d in doc["diagnostics"])

    def test_nothing_to_lint_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main_lint([])
        assert exc.value.code == 2

    def test_concurrency_pass_only(self, capsys):
        rc = main_lint(
            ["--problem", "bandit2", "--tile-width", "3",
             "--pass", "concurrency", "--format", "json"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is True


class TestRacecheck:
    def test_clean_problem_exits_zero(self, capsys):
        rc = main_racecheck(
            ["--problem", "bandit2", "--tile-width", "3",
             "--ranks", "2", "--backend", "inline", "N=6"]
        )
        assert rc == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_static_only_skips_executions(self, capsys):
        rc = main_racecheck(
            ["--problem", "bandit2", "--tile-width", "3", "--static-only"]
        )
        assert rc == 0
        capsys.readouterr()

    def test_process_backend_json(self, capsys):
        rc = main_racecheck(
            ["--problem", "bandit2", "--tile-width", "3", "--ranks", "2",
             "--backend", "process", "--format", "json", "N=6"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is True

    def test_spec_file(self, spec_file, capsys):
        rc = main_racecheck(
            ["--spec", str(spec_file), "--ranks", "2",
             "--backend", "inline", "M=9"]
        )
        assert rc == 0
        capsys.readouterr()

    def test_nothing_to_check_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main_racecheck([])
        assert exc.value.code == 2


class TestExitCodeConvention:
    """All four entry points: 0 success, 1 ReproError/findings, 2 usage."""

    @pytest.mark.parametrize(
        "entry, ok_argv, fail_argv, usage_argv",
        [
            (
                main_generate,
                ["{spec}"],
                ["{bad_path}"],
                [],
            ),
            (
                main_run,
                ["--problem", "bandit2", "--tile-width", "3", "N=6"],
                ["--spec", "{bad_path}"],
                [],
            ),
            (
                main_simulate,
                ["--problem", "bandit2", "--tile-width", "5", "N=12"],
                ["--problem", "bandit2", "--tile-width", "5", "N=-1"],
                ["--no-such-flag"],
            ),
            (
                main_lint,
                ["--problem", "bandit2", "--tile-width", "3"],
                ["--spec", "{bad_spec}"],
                [],
            ),
            (
                main_racecheck,
                ["--problem", "bandit2", "--tile-width", "3",
                 "--ranks", "1", "N=6"],
                ["--spec", "{bad_path}"],
                ["--backend", "threads"],
            ),
        ],
        ids=["generate", "run", "simulate", "lint", "racecheck"],
    )
    def test_exit_codes(
        self, entry, ok_argv, fail_argv, usage_argv,
        spec_file, bad_spec_file, tmp_path, capsys
    ):
        bad_path = tmp_path / "unparseable.spec"
        bad_path.write_text("problem: x\n")  # missing required keys
        subst = {
            "{spec}": str(spec_file),
            "{bad_path}": str(bad_path),
            "{bad_spec}": str(bad_spec_file),
        }
        ok = [subst.get(a, a) for a in ok_argv]
        fail = [subst.get(a, a) for a in fail_argv]
        usage = [subst.get(a, a) for a in usage_argv]
        assert entry(ok) == 0
        assert entry(fail) == 1
        with pytest.raises(SystemExit) as exc:
            entry(usage)
        assert exc.value.code == 2
        capsys.readouterr()
