"""Command-line interface tests."""

import pytest

from repro.cli import main_generate, main_run, main_simulate

SPEC = """\
problem: staircase
loop_vars: x y
params: M
tile_widths: 3

constraints:
    x >= 0
    y >= 0
    x + y <= M

templates:
    right = 1 0
    up = 0 1

center_code_c: |
    V[loc] = 1.0;

center_code_py: |
    V[loc] = 1.0
"""


@pytest.fixture()
def spec_file(tmp_path):
    path = tmp_path / "prob.spec"
    path.write_text(SPEC)
    return path


class TestGenerate:
    def test_c_output(self, spec_file, tmp_path, capsys):
        out = tmp_path / "prog.c"
        rc = main_generate([str(spec_file), "-o", str(out)])
        assert rc == 0
        text = out.read_text()
        assert "#pragma omp parallel" in text
        assert "staircase" in text
        assert "wrote" in capsys.readouterr().out

    def test_py_output(self, spec_file, tmp_path):
        out = tmp_path / "prog.py"
        rc = main_generate([str(spec_file), "-o", str(out), "--target", "py"])
        assert rc == 0
        compile(out.read_text(), "prog.py", "exec")

    def test_stdout_default(self, spec_file, capsys):
        rc = main_generate([str(spec_file)])
        assert rc == 0
        assert "int main(" in capsys.readouterr().out

    def test_describe_flag(self, spec_file, capsys):
        rc = main_generate([str(spec_file), "--describe"])
        assert rc == 0
        assert "tile dependencies" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.spec"
        bad.write_text("problem: x\n")
        rc = main_generate([str(bad)])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_lp_prune_option(self, spec_file, capsys):
        rc = main_generate([str(spec_file), "--prune", "lp"])
        assert rc == 0


class TestRun:
    def test_bandit(self, capsys):
        rc = main_run(["--problem", "bandit2", "--tile-width", "3", "N=6"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "objective" in out
        assert "tiles executed" in out

    def test_alignment_defaults(self, capsys):
        rc = main_run(["--problem", "edit-distance", "--tile-width", "5"])
        assert rc == 0
        assert "objective" in capsys.readouterr().out

    def test_unknown_problem(self):
        with pytest.raises(SystemExit):
            main_run(["--problem", "nope"])

    def test_bad_param_format(self):
        with pytest.raises(SystemExit):
            main_run(["--problem", "bandit2", "N:6"])

    def test_non_integer_param(self):
        with pytest.raises(SystemExit):
            main_run(["--problem", "bandit2", "N=six"])


class TestSimulate:
    def test_single_run(self, capsys):
        rc = main_simulate(
            ["--problem", "bandit2", "--tile-width", "5", "--nodes", "2",
             "--cores", "4", "N=20"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "efficiency" in out
        assert "messages" in out

    def test_core_sweep(self, capsys):
        rc = main_simulate(
            ["--problem", "bandit2", "--tile-width", "5", "--sweep-cores",
             "N=16"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_hyperplane_lb(self, capsys):
        rc = main_simulate(
            ["--problem", "bandit2", "--tile-width", "5", "--nodes", "2",
             "--cores", "4", "--lb", "hyperplane", "N=20"]
        )
        assert rc == 0
        assert "hyperplane" in capsys.readouterr().out

    def test_timeline(self, capsys):
        rc = main_simulate(
            ["--problem", "bandit2", "--tile-width", "5", "--nodes", "2",
             "--cores", "4", "--timeline", "N=20"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "node  0 |" in out
        assert "node  1 |" in out
