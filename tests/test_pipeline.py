"""The generation pipeline product (Section IV-C)."""

import pytest

from repro.errors import GenerationError
from repro.generator import GeneratedProgram, generate
from repro.problems import two_arm_spec


class TestGenerate:
    def test_product_fields(self, bandit2_program):
        p = bandit2_program
        assert isinstance(p, GeneratedProgram)
        assert p.deltas
        assert set(p.delta_templates) == set(p.deltas)
        assert set(p.pack_plans) == set(p.deltas)
        assert set(p.offsets) == set(p.spec.templates.names())
        assert p.validity.per_template.keys() == set(
            p.spec.templates.names()
        )

    def test_stats_recorded(self, bandit2_program):
        s = bandit2_program.stats
        assert s.total_s > 0
        assert s.total_s >= s.spaces_s

    def test_describe(self, bandit2_program):
        text = bandit2_program.describe()
        assert "tile dependencies" in text
        assert "validity checks" in text
        assert "padded tile shape" in text

    def test_prune_levels_give_equivalent_programs(self):
        spec = two_arm_spec(tile_width=4)
        a = generate(spec, prune="syntactic")
        b = generate(spec, prune="lp")
        params = {"N": 9}
        assert set(a.spaces.tiles(params)) == set(b.spaces.tiles(params))
        for t in a.spaces.tiles(params):
            assert a.spaces.tile_point_count(
                t, params
            ) == b.spaces.tile_point_count(t, params)

    def test_lp_prune_never_more_constraints(self):
        spec = two_arm_spec(tile_width=4)
        a = generate(spec, prune="syntactic")
        b = generate(spec, prune="lp")
        assert len(b.spaces.tile_space) <= len(a.spaces.tile_space)

    def test_initial_tiles_helper(self, bandit2_program):
        fast = bandit2_program.initial_tiles({"N": 7})
        slow = bandit2_program.initial_tiles({"N": 7}, method="exhaustive")
        assert fast == slow

    def test_slab_work_helper(self, bandit2_program):
        works = bandit2_program.slab_work({"N": 7})
        assert sum(works.values()) == bandit2_program.spaces.total_points(
            {"N": 7}
        )
