"""Kernels synthesized from center_code_py (spec-file-only problems)."""

import pytest

from repro import execute, generate, parse_spec_text
from repro.errors import SpecError
from repro.problems import two_arm_reference, two_arm_spec
from repro.spec import ensure_kernel, kernel_from_center_code

STAIRCASE = """\
problem: staircase
loop_vars: x y
params: M
tile_widths: 3

constraints:
    x >= 0
    y >= 0
    x + y <= M

templates:
    right = 1 0
    up = 0 1

center_code_py: |
    _c = float((3 * x + 5 * y) % 7)
    _best = None
    if is_valid_right:
        _best = V[loc_right]
    if is_valid_up and (_best is None or V[loc_up] < _best):
        _best = V[loc_up]
    V[loc] = _c + (0.0 if _best is None else _best)
"""


def brute(x, y, m):
    c = float((3 * x + 5 * y) % 7)
    options = []
    if x + 1 + y <= m:
        options.append(brute(x + 1, y, m))
    if x + y + 1 <= m:
        options.append(brute(x, y + 1, m))
    return c + (min(options) if options else 0.0)


class TestSynthesizedKernel:
    def test_matches_brute_force(self):
        spec = parse_spec_text(STAIRCASE)
        kernel = kernel_from_center_code(spec)
        res = execute(generate(spec), {"M": 11}, kernel=kernel)
        assert res.objective_value == brute(0, 0, 11)

    def test_matches_handwritten_kernel(self):
        # The bandit's center_code_py must reproduce its Python kernel.
        spec = two_arm_spec(tile_width=3)
        synthesized = kernel_from_center_code(spec)
        res = execute(generate(spec), {"N": 7}, kernel=synthesized)
        assert res.objective_value == pytest.approx(
            two_arm_reference(7), abs=1e-12
        )

    def test_ensure_kernel_prefers_callable(self):
        spec = two_arm_spec(tile_width=3)
        assert ensure_kernel(spec) is spec.kernel

    def test_ensure_kernel_synthesizes(self):
        spec = parse_spec_text(STAIRCASE)
        assert spec.kernel is None
        assert callable(ensure_kernel(spec))

    def test_globals_visible(self):
        text = STAIRCASE.replace(
            "center_code_py: |",
            "global_code_py: |\n    OFFSET = 2.0\n\ncenter_code_py: |",
        ).replace("V[loc] = _c +", "V[loc] = OFFSET - 2.0 + _c +")
        spec = parse_spec_text(text)
        res = execute(generate(spec), {"M": 7}, kernel=ensure_kernel(spec))
        assert res.objective_value == brute(0, 0, 7)


class TestGuards:
    def test_missing_center_code_rejected(self):
        spec = two_arm_spec(tile_width=3)
        import dataclasses

        bare = dataclasses.replace(spec, center_code_py="", kernel=None)
        with pytest.raises(SpecError):
            kernel_from_center_code(bare)

    def test_reading_invalid_dependency_rejected(self):
        text = STAIRCASE.replace(
            "    if is_valid_right:\n        _best = V[loc_right]\n",
            "    _best = V[loc_right]\n",
        )
        spec = parse_spec_text(text)
        kernel = kernel_from_center_code(spec)
        with pytest.raises(SpecError):
            execute(generate(spec), {"M": 5}, kernel=kernel)

    def test_forgetting_to_write_rejected(self):
        text = STAIRCASE.replace("    V[loc] = _c + (0.0 if _best is None else _best)\n", "    _ignored = _c\n")
        spec = parse_spec_text(text)
        kernel = kernel_from_center_code(spec)
        with pytest.raises(SpecError):
            execute(generate(spec), {"M": 5}, kernel=kernel)

    def test_reading_current_before_write_rejected(self):
        text = STAIRCASE.replace(
            "    _c = float((3 * x + 5 * y) % 7)\n",
            "    _c = V[loc]\n",
        )
        spec = parse_spec_text(text)
        kernel = kernel_from_center_code(spec)
        with pytest.raises(SpecError):
            execute(generate(spec), {"M": 5}, kernel=kernel)

    def test_writing_dependency_rejected(self):
        text = STAIRCASE + "\n"
        text = text.replace(
            "    V[loc] = _c + (0.0 if _best is None else _best)",
            "    V[loc_right] = 1.0\n    V[loc] = _c",
        )
        spec = parse_spec_text(text)
        kernel = kernel_from_center_code(spec)
        with pytest.raises(SpecError):
            execute(generate(spec), {"M": 5}, kernel=kernel)

    def test_writing_dependency_names_the_token(self):
        # The error must say *which* location was written, and be
        # distinct from the undeclared-read message.
        text = STAIRCASE.replace(
            "    V[loc] = _c + (0.0 if _best is None else _best)",
            "    V[loc_right] = 1.0\n"
            "    V[loc] = _c + (0.0 if _best is None else _best)",
        )
        spec = parse_spec_text(text)
        kernel = kernel_from_center_code(spec)
        with pytest.raises(SpecError, match=r"assigned V\[loc_right\]"):
            execute(generate(spec), {"M": 5}, kernel=kernel)

    def test_undeclared_read_names_the_token(self):
        text = STAIRCASE.replace("V[loc_up]", "V[loc_ghost]").replace(
            "is_valid_up", "is_valid_right"
        )
        spec = parse_spec_text(text)
        kernel = kernel_from_center_code(spec)
        with pytest.raises(SpecError, match=r"V\[loc_ghost\].*not a "
                                            r"declared template"):
            execute(generate(spec), {"M": 5}, kernel=kernel)

    def test_invalid_read_names_template_and_guard(self):
        text = STAIRCASE.replace(
            "    if is_valid_right:\n        _best = V[loc_right]\n",
            "    _best = V[loc_right]\n",
        )
        spec = parse_spec_text(text)
        kernel = kernel_from_center_code(spec)
        with pytest.raises(SpecError, match=r"V\[loc_right\].*is_valid_right"):
            execute(generate(spec), {"M": 5}, kernel=kernel)


class TestCliSpecOption:
    def test_run_from_spec_file(self, tmp_path, capsys):
        from repro.cli import main_run

        path = tmp_path / "stair.spec"
        path.write_text(STAIRCASE)
        rc = main_run(["--spec", str(path), "M=9"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "objective" in out
        value = float(out.rsplit("=", 1)[1])
        assert value == brute(0, 0, 9)
